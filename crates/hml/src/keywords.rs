//! The keyword registry of the hypermedia markup language (paper Table 1).
//!
//! Keywords appear in two positions: as *tag names* (`<TEXT> ... </TEXT>`)
//! and as *attribute names* inside an element (`SOURCE=`, `STARTIME=`, ...).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Tag-position keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TagKeyword {
    /// `TITLE` — document title indicator.
    Title,
    /// `H1` — heading level 1.
    H1,
    /// `H2` — heading level 2.
    H2,
    /// `H3` — heading level 3.
    H3,
    /// `PAR` — paragraph indicator (void element).
    Par,
    /// `SEP` — separator indicator (void element).
    Sep,
    /// `TEXT` — text media component.
    Text,
    /// `IMG` — image media component.
    Img,
    /// `AU` — audio media component.
    Au,
    /// `VI` — video media component.
    Vi,
    /// `AU_VI` — synchronized audio+video pair.
    AuVi,
    /// `HLINK` — hyperlink.
    Hlink,
    /// `B` — boldface span.
    Bold,
    /// `I` — italics span.
    Italic,
    /// `U` — underline span.
    Underline,
}

impl TagKeyword {
    /// The canonical spelling used in markup.
    pub fn spelling(self) -> &'static str {
        match self {
            TagKeyword::Title => "TITLE",
            TagKeyword::H1 => "H1",
            TagKeyword::H2 => "H2",
            TagKeyword::H3 => "H3",
            TagKeyword::Par => "PAR",
            TagKeyword::Sep => "SEP",
            TagKeyword::Text => "TEXT",
            TagKeyword::Img => "IMG",
            TagKeyword::Au => "AU",
            TagKeyword::Vi => "VI",
            TagKeyword::AuVi => "AU_VI",
            TagKeyword::Hlink => "HLINK",
            TagKeyword::Bold => "B",
            TagKeyword::Italic => "I",
            TagKeyword::Underline => "U",
        }
    }
    /// Parse a tag name (case-insensitive, as in HTML).
    pub fn from_spelling(s: &str) -> Option<TagKeyword> {
        Some(match s.to_ascii_uppercase().as_str() {
            "TITLE" => TagKeyword::Title,
            "H1" => TagKeyword::H1,
            "H2" => TagKeyword::H2,
            "H3" => TagKeyword::H3,
            "PAR" => TagKeyword::Par,
            "SEP" => TagKeyword::Sep,
            "TEXT" => TagKeyword::Text,
            "IMG" => TagKeyword::Img,
            "AU" => TagKeyword::Au,
            "VI" => TagKeyword::Vi,
            "AU_VI" => TagKeyword::AuVi,
            "HLINK" => TagKeyword::Hlink,
            "B" => TagKeyword::Bold,
            "I" => TagKeyword::Italic,
            "U" => TagKeyword::Underline,
            _ => return None,
        })
    }
    /// Void elements have no closing tag (`<PAR>`, `<SEP>`).
    pub fn is_void(self) -> bool {
        matches!(self, TagKeyword::Par | TagKeyword::Sep)
    }
    /// Media-component elements.
    pub fn is_media(self) -> bool {
        matches!(
            self,
            TagKeyword::Text | TagKeyword::Img | TagKeyword::Au | TagKeyword::Vi | TagKeyword::AuVi
        )
    }
    /// Inline style spans.
    pub fn is_style(self) -> bool {
        matches!(
            self,
            TagKeyword::Bold | TagKeyword::Italic | TagKeyword::Underline
        )
    }
    /// All tag keywords, in a stable order.
    pub const ALL: [TagKeyword; 15] = [
        TagKeyword::Title,
        TagKeyword::H1,
        TagKeyword::H2,
        TagKeyword::H3,
        TagKeyword::Par,
        TagKeyword::Sep,
        TagKeyword::Text,
        TagKeyword::Img,
        TagKeyword::Au,
        TagKeyword::Vi,
        TagKeyword::AuVi,
        TagKeyword::Hlink,
        TagKeyword::Bold,
        TagKeyword::Italic,
        TagKeyword::Underline,
    ];
}

impl fmt::Display for TagKeyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spelling())
    }
}

/// Attribute-position keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrKeyword {
    /// `SOURCE` — media retrieval options (server and object key).
    Source,
    /// `ID` — component identification number.
    Id,
    /// `STARTIME` — relative playout start time.
    Startime,
    /// `DURATION` — playout duration.
    Duration,
    /// `WHERE` — placement coordinates on the display.
    Where,
    /// `HEIGHT` — image height.
    Height,
    /// `WIDTH` — image width.
    Width,
    /// `NOTE` — annotation text.
    Note,
    /// `AT` — timed auto-activation instant of a hyperlink.
    At,
    /// `TO` — hyperlink target document.
    To,
    /// `HOST` — hyperlink target server (remote links).
    Host,
    /// `KIND` — hyperlink kind (`SEQ` or `EXP`).
    Kind,
    /// `ENCODING` — media encoding name.
    EncodingAttr,
    /// `SYNC` — named synchronization group (implementation extension of
    /// the paper's future work: generalizes `AU_VI` to n-way groups).
    Sync,
}

impl AttrKeyword {
    /// The canonical spelling used in markup.
    pub fn spelling(self) -> &'static str {
        match self {
            AttrKeyword::Source => "SOURCE",
            AttrKeyword::Id => "ID",
            AttrKeyword::Startime => "STARTIME",
            AttrKeyword::Duration => "DURATION",
            AttrKeyword::Where => "WHERE",
            AttrKeyword::Height => "HEIGHT",
            AttrKeyword::Width => "WIDTH",
            AttrKeyword::Note => "NOTE",
            AttrKeyword::At => "AT",
            AttrKeyword::To => "TO",
            AttrKeyword::Host => "HOST",
            AttrKeyword::Kind => "KIND",
            AttrKeyword::EncodingAttr => "ENCODING",
            AttrKeyword::Sync => "SYNC",
        }
    }
    /// Parse an attribute name (case-insensitive).
    pub fn from_spelling(s: &str) -> Option<AttrKeyword> {
        Some(match s.to_ascii_uppercase().as_str() {
            "SOURCE" => AttrKeyword::Source,
            "ID" => AttrKeyword::Id,
            "STARTIME" => AttrKeyword::Startime,
            "DURATION" => AttrKeyword::Duration,
            "WHERE" => AttrKeyword::Where,
            "HEIGHT" => AttrKeyword::Height,
            "WIDTH" => AttrKeyword::Width,
            "NOTE" => AttrKeyword::Note,
            "AT" => AttrKeyword::At,
            "TO" => AttrKeyword::To,
            "HOST" => AttrKeyword::Host,
            "KIND" => AttrKeyword::Kind,
            "ENCODING" => AttrKeyword::EncodingAttr,
            "SYNC" => AttrKeyword::Sync,
            _ => return None,
        })
    }
    /// All attribute keywords, in a stable order.
    pub const ALL: [AttrKeyword; 14] = [
        AttrKeyword::Source,
        AttrKeyword::Id,
        AttrKeyword::Startime,
        AttrKeyword::Duration,
        AttrKeyword::Where,
        AttrKeyword::Height,
        AttrKeyword::Width,
        AttrKeyword::Note,
        AttrKeyword::At,
        AttrKeyword::To,
        AttrKeyword::Host,
        AttrKeyword::Kind,
        AttrKeyword::EncodingAttr,
        AttrKeyword::Sync,
    ];
}

impl fmt::Display for AttrKeyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spelling())
    }
}

/// One row of the keyword table (paper Table 1), regenerated live by the
/// TAB1 experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeywordRow {
    /// The keyword spelling(s), comma-separated as in the paper.
    pub keyword: String,
    /// The paper's description.
    pub description: &'static str,
}

/// Regenerate paper Table 1 from the live registry.
pub fn keyword_table() -> Vec<KeywordRow> {
    vec![
        KeywordRow {
            keyword: "TITLE".into(),
            description: "Document title indicator",
        },
        KeywordRow {
            keyword: "H1, H2, H3".into(),
            description: "Heading indicators",
        },
        KeywordRow {
            keyword: "PAR, SEP".into(),
            description: "Paragraph and separator indicators",
        },
        KeywordRow {
            keyword: "TEXT, IMG, AU, VI, AU_VI".into(),
            description: "Media type indicators",
        },
        KeywordRow {
            keyword: "SOURCE, ID".into(),
            description: "Media source and id indicators",
        },
        KeywordRow {
            keyword: "STARTIME, DURATION".into(),
            description: "Media time characteristics indicators",
        },
        KeywordRow {
            keyword: "B, I, U".into(),
            description: "Boldface, italics, underline characters",
        },
        KeywordRow {
            keyword: "NOTE".into(),
            description: "Annotation indicator",
        },
        KeywordRow {
            keyword: "HLINK, AT, TO, HOST, KIND".into(),
            description: "Hyperlink indicators",
        },
        KeywordRow {
            keyword: "WHERE, HEIGHT, WIDTH".into(),
            description: "Media placement indicators",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_spellings_round_trip() {
        for t in TagKeyword::ALL {
            assert_eq!(TagKeyword::from_spelling(t.spelling()), Some(t));
            // case-insensitive
            assert_eq!(
                TagKeyword::from_spelling(&t.spelling().to_lowercase()),
                Some(t)
            );
        }
        assert_eq!(TagKeyword::from_spelling("BOGUS"), None);
    }

    #[test]
    fn attr_spellings_round_trip() {
        for a in AttrKeyword::ALL {
            assert_eq!(AttrKeyword::from_spelling(a.spelling()), Some(a));
        }
        assert_eq!(AttrKeyword::from_spelling("FONTS"), None);
    }

    #[test]
    fn void_and_media_classification() {
        assert!(TagKeyword::Par.is_void());
        assert!(TagKeyword::Sep.is_void());
        assert!(!TagKeyword::Text.is_void());
        assert!(TagKeyword::AuVi.is_media());
        assert!(!TagKeyword::Hlink.is_media());
        assert!(TagKeyword::Bold.is_style());
    }

    #[test]
    fn keyword_table_covers_every_registry_entry() {
        let table = keyword_table();
        let all_cells: String = table
            .iter()
            .map(|r| r.keyword.clone())
            .collect::<Vec<_>>()
            .join(", ");
        for t in TagKeyword::ALL {
            assert!(
                all_cells.split(", ").any(|k| k == t.spelling()),
                "tag {t} missing from Table 1"
            );
        }
        for a in AttrKeyword::ALL {
            if a == AttrKeyword::EncodingAttr || a == AttrKeyword::Sync {
                continue; // implementation extensions, not in the paper's table
            }
            assert!(
                all_cells.split(", ").any(|k| k == a.spelling()),
                "attr {a} missing from Table 1"
            );
        }
    }
}

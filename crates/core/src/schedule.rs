//! Playout-schedule computation — the client-side "preprocessing of the
//! received presentation scenario".
//!
//! §3.1: "every media stream S_i is recognized by its corresponding language
//! rule and a structure E_i is informed. This structure contains the stream's
//! timing parameters like start time t_i and duration d_i, the corresponding
//! data position in the temporary storage mechanisms (media buffers), and
//! other useful information. Acquiring this information, the playout
//! scheduler process can arrange the presentation of each media stream
//! according to its playout deadlines."

use crate::ids::ComponentId;
use crate::interval::Interval;
use crate::media_kind::MediaKind;
use crate::scenario::Scenario;
use crate::time::{MediaDuration, MediaTime};
use serde::{Deserialize, Serialize};

/// The structure `E_i` of the paper: everything the playout scheduler needs
/// to present one media stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlayoutEntry {
    /// The component this entry plays.
    pub component: ComponentId,
    /// Media kind (selects the presentation device / handler).
    pub kind: MediaKind,
    /// Relative playout start time `t_i` — the playout deadline.
    pub start: MediaTime,
    /// Playout duration `d_i` (clamped for open-ended components).
    pub duration: MediaDuration,
    /// Index of the media buffer this stream's data is staged in
    /// ("the corresponding data position in the temporary storage
    /// mechanisms"); assigned densely per continuous/buffered stream.
    pub buffer_slot: Option<usize>,
    /// Ids of the components this one must stay in sync with.
    pub sync_partners: Vec<ComponentId>,
}

impl PlayoutEntry {
    /// The playout interval `[t_i, t_i + d_i)`.
    pub fn interval(&self) -> Interval {
        Interval::from_start_duration(self.start, self.duration)
    }
    /// End of playout.
    pub fn end(&self) -> MediaTime {
        self.start + self.duration
    }
}

/// A discrete event on the presentation timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimelineEventKind {
    /// A component's playout begins (its deadline).
    Start(ComponentId),
    /// A component's playout ends.
    Stop(ComponentId),
    /// A timed hyperlink auto-fires (index into `Scenario::links`).
    AutoLink(usize),
}

/// An instant plus what happens then.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelineEvent {
    /// When the event occurs (relative to presentation start).
    pub at: MediaTime,
    /// What occurs.
    pub kind: TimelineEventKind,
}

/// The complete playout schedule derived from a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlayoutSchedule {
    /// One entry per media component, in deadline order (ties: id order).
    pub entries: Vec<PlayoutEntry>,
    /// All timeline events in chronological order. Start events sort before
    /// Stop events at the same instant so zero-gap sequences hand over
    /// cleanly; AutoLink events sort last at their instant.
    pub events: Vec<TimelineEvent>,
    /// The presentation end instant.
    pub end: MediaTime,
}

impl PlayoutSchedule {
    /// Build the schedule from a scenario — the paper's preprocessing step.
    ///
    /// Buffer slots are assigned densely, in deadline order, to every
    /// component that needs staged delivery (everything stored remotely;
    /// inline text needs no buffer).
    pub fn from_scenario(scenario: &Scenario) -> PlayoutSchedule {
        let end = scenario.presentation_end();
        let mut entries: Vec<PlayoutEntry> = scenario
            .components
            .iter()
            .map(|c| {
                let duration = match c.duration {
                    Some(d) => d,
                    None => end - c.start,
                };
                PlayoutEntry {
                    component: c.id,
                    kind: c.kind(),
                    start: c.start,
                    duration: duration.max(MediaDuration::ZERO),
                    buffer_slot: None,
                    sync_partners: scenario.sync_partners(c.id),
                }
            })
            .collect();
        entries.sort_by_key(|e| (e.start, e.component));
        let mut slot = 0usize;
        for e in &mut entries {
            let needs_buffer = match scenario.component(e.component) {
                Some(c) => matches!(c.content, crate::scenario::ComponentContent::Stored { .. }),
                None => false,
            };
            if needs_buffer {
                e.buffer_slot = Some(slot);
                slot += 1;
            }
        }

        let mut events = Vec::with_capacity(entries.len() * 2 + scenario.links.len());
        for e in &entries {
            events.push(TimelineEvent {
                at: e.start,
                kind: TimelineEventKind::Start(e.component),
            });
            events.push(TimelineEvent {
                at: e.end(),
                kind: TimelineEventKind::Stop(e.component),
            });
        }
        for (i, l) in scenario.links.iter().enumerate() {
            if let Some(at) = l.auto_at {
                events.push(TimelineEvent {
                    at,
                    kind: TimelineEventKind::AutoLink(i),
                });
            }
        }
        events.sort_by_key(|ev| {
            let rank = match ev.kind {
                TimelineEventKind::Start(_) => 0u8,
                TimelineEventKind::Stop(_) => 1,
                TimelineEventKind::AutoLink(_) => 2,
            };
            let id = match ev.kind {
                TimelineEventKind::Start(c) | TimelineEventKind::Stop(c) => c.raw(),
                TimelineEventKind::AutoLink(i) => i as u64,
            };
            (ev.at, rank, id)
        });
        PlayoutSchedule {
            entries,
            events,
            end,
        }
    }

    /// Entry for a component.
    pub fn entry(&self, id: ComponentId) -> Option<&PlayoutEntry> {
        self.entries.iter().find(|e| e.component == id)
    }

    /// Components whose playout interval contains instant `t`.
    pub fn active_at(&self, t: MediaTime) -> Vec<ComponentId> {
        self.entries
            .iter()
            .filter(|e| e.interval().contains_instant(t))
            .map(|e| e.component)
            .collect()
    }

    /// The number of buffer slots the client must provision.
    pub fn buffer_slots(&self) -> usize {
        self.entries
            .iter()
            .filter_map(|e| e.buffer_slot)
            .map(|s| s + 1)
            .max()
            .unwrap_or(0)
    }

    /// Maximum number of simultaneously active continuous streams — the
    /// peak device/connection concurrency the client must support.
    pub fn peak_continuous_concurrency(&self) -> usize {
        let mut peak = 0usize;
        let mut active = 0usize;
        for ev in &self.events {
            match ev.kind {
                TimelineEventKind::Start(c) => {
                    if self
                        .entry(c)
                        .map(|e| e.kind.is_continuous())
                        .unwrap_or(false)
                    {
                        active += 1;
                        peak = peak.max(active);
                    }
                }
                TimelineEventKind::Stop(c) => {
                    if self
                        .entry(c)
                        .map(|e| e.kind.is_continuous())
                        .unwrap_or(false)
                    {
                        active = active.saturating_sub(1);
                    }
                }
                TimelineEventKind::AutoLink(_) => {}
            }
        }
        peak
    }

    /// Render the schedule as a printable timeline table (used by the FIG2
    /// experiment and the examples).
    pub fn timeline_table(&self) -> String {
        let mut out = String::new();
        out.push_str("component  kind    start      end        duration   sync-with\n");
        for e in &self.entries {
            let partners = if e.sync_partners.is_empty() {
                "-".to_string()
            } else {
                e.sync_partners
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            out.push_str(&format!(
                "{:<10} {:<7} {:>9} {:>10} {:>10}   {}\n",
                e.component.to_string(),
                e.kind.to_string(),
                e.start.to_string(),
                e.end().to_string(),
                e.duration.to_string(),
                partners
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{DocumentId, ServerId};
    use crate::media_kind::Encoding;
    use crate::scenario::{
        ComponentContent, HyperLink, LinkKind, LinkTarget, MediaComponent, MediaSource, SyncGroup,
        TextBlock,
    };

    /// Build the exact Fig. 2 scenario from the paper: background text, image
    /// I1 at t=0 for d_i1, image I2 at t_i2 for d_i2, audio A1 synchronized
    /// with video V at t_a1 (both duration d_v), audio A2 at t_a2 for d_a2.
    pub fn figure2_scenario() -> Scenario {
        let doc = DocumentId::new(1);
        let srv = ServerId::new(0);
        let mut s = Scenario::new(doc, "figure-2");
        let stored = |id: u64, enc: Encoding, start_ms: i64, dur_ms: i64| MediaComponent {
            id: ComponentId::new(id),
            content: ComponentContent::Stored {
                source: MediaSource::new(srv, format!("m{id}")),
                encoding: enc,
            },
            start: MediaTime::from_millis(start_ms),
            duration: Some(MediaDuration::from_millis(dur_ms)),
            region: None,
            note: None,
        };
        // Background text visible throughout.
        s.components.push(MediaComponent {
            id: ComponentId::new(0),
            content: ComponentContent::Text(vec![TextBlock::ParagraphBreak]),
            start: MediaTime::ZERO,
            duration: None,
            region: None,
            note: None,
        });
        s.components.push(stored(1, Encoding::Jpeg, 0, 5_000)); // I1
        s.components.push(stored(2, Encoding::Jpeg, 5_000, 7_000)); // I2
        s.components.push(stored(3, Encoding::Pcm, 6_000, 8_000)); // A1
        s.components.push(stored(4, Encoding::Mpeg, 6_000, 8_000)); // V
        s.components.push(stored(5, Encoding::Pcm, 15_000, 4_000)); // A2
        s.sync_groups.push(SyncGroup {
            members: vec![ComponentId::new(3), ComponentId::new(4)],
        });
        s.links.push(HyperLink {
            kind: LinkKind::Sequential,
            target: LinkTarget::Local(DocumentId::new(2)),
            auto_at: Some(MediaTime::from_millis(19_000)),
            note: Some("next".into()),
        });
        s
    }

    #[test]
    fn entries_sorted_by_deadline() {
        let sched = PlayoutSchedule::from_scenario(&figure2_scenario());
        let starts: Vec<i64> = sched.entries.iter().map(|e| e.start.as_millis()).collect();
        let mut sorted = starts.clone();
        sorted.sort();
        assert_eq!(starts, sorted);
        assert_eq!(sched.entries.len(), 6);
    }

    #[test]
    fn buffer_slots_only_for_stored_media() {
        let sched = PlayoutSchedule::from_scenario(&figure2_scenario());
        // Text is inline → no slot; the 5 stored components get slots 0..5.
        let text = sched.entry(ComponentId::new(0)).unwrap();
        assert_eq!(text.buffer_slot, None);
        assert_eq!(sched.buffer_slots(), 5);
        let mut slots: Vec<usize> = sched.entries.iter().filter_map(|e| e.buffer_slot).collect();
        slots.sort();
        assert_eq!(slots, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sync_partners_propagate() {
        let sched = PlayoutSchedule::from_scenario(&figure2_scenario());
        let a1 = sched.entry(ComponentId::new(3)).unwrap();
        assert_eq!(a1.sync_partners, vec![ComponentId::new(4)]);
        let v = sched.entry(ComponentId::new(4)).unwrap();
        assert_eq!(v.sync_partners, vec![ComponentId::new(3)]);
    }

    #[test]
    fn events_chronological_with_start_before_stop() {
        let sched = PlayoutSchedule::from_scenario(&figure2_scenario());
        for w in sched.events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        // I1 stops at 5s exactly when I2 starts: Start(I2) must precede Stop(I1).
        let at5: Vec<_> = sched
            .events
            .iter()
            .filter(|e| e.at == MediaTime::from_millis(5_000))
            .collect();
        assert!(matches!(at5[0].kind, TimelineEventKind::Start(c) if c == ComponentId::new(2)));
        assert!(matches!(at5[1].kind, TimelineEventKind::Stop(c) if c == ComponentId::new(1)));
    }

    #[test]
    fn active_at_matches_figure2_timeline() {
        let sched = PlayoutSchedule::from_scenario(&figure2_scenario());
        // At t=7s: text, I2, A1, V are active.
        let active = sched.active_at(MediaTime::from_millis(7_000));
        assert_eq!(
            active,
            vec![
                ComponentId::new(0),
                ComponentId::new(2),
                ComponentId::new(3),
                ComponentId::new(4)
            ]
        );
        // At t=16s: text and A2.
        let active = sched.active_at(MediaTime::from_millis(16_000));
        assert_eq!(active, vec![ComponentId::new(0), ComponentId::new(5)]);
    }

    #[test]
    fn presentation_end_covers_link() {
        let sched = PlayoutSchedule::from_scenario(&figure2_scenario());
        assert_eq!(sched.end, MediaTime::from_millis(19_000));
        let link_ev = sched
            .events
            .iter()
            .find(|e| matches!(e.kind, TimelineEventKind::AutoLink(_)))
            .unwrap();
        assert_eq!(link_ev.at, MediaTime::from_millis(19_000));
    }

    #[test]
    fn peak_concurrency_counts_sync_pair() {
        let sched = PlayoutSchedule::from_scenario(&figure2_scenario());
        assert_eq!(sched.peak_continuous_concurrency(), 2); // A1 + V together
    }

    #[test]
    fn timeline_table_lists_all_components() {
        let sched = PlayoutSchedule::from_scenario(&figure2_scenario());
        let table = sched.timeline_table();
        for e in &sched.entries {
            assert!(table.contains(&e.component.to_string()));
        }
    }
}

#![allow(clippy::field_reassign_with_default)]
//! EXP-ABLATE — ablations of the design choices DESIGN.md calls out:
//!
//! 1. grading order: video-first (the paper's rule) vs audio-first vs
//!    largest-saving;
//! 2. skew-repair policy: drop-leader vs duplicate-laggard vs both;
//! 3. feedback-report interval sensitivity.

use hermes_bench::harness::run_seeds;
use hermes_bench::{fmt_dur_ms, ExpOpts, StreamingParams, Table};
use hermes_bench::{max_dur_of, mean_of};
use hermes_client::PlayoutConfig;
use hermes_core::{GradingOrder, MediaDuration, MediaTime, SkewPolicy};
use hermes_simnet::{CongestionEpoch, CongestionProfile, JitterModel, LossModel};

fn congested() -> CongestionProfile {
    CongestionProfile::new(vec![CongestionEpoch {
        start: MediaTime::from_secs(8),
        end: MediaTime::from_secs(20),
        load: 0.55,
        extra_loss: 0.02,
    }])
}

fn main() {
    let opts = ExpOpts::parse();
    let mut out = opts.sink();
    let seeds = opts.seeds(&[3, 5, 8]);

    // --- Ablation 1: grading order ---------------------------------------
    let mut t = Table::new(vec![
        "grading order",
        "degrades",
        "stops",
        "audio quality kept",
        "disruptions",
    ]);
    for (label, order) in [
        ("video-first (paper)", GradingOrder::VideoFirst),
        ("audio-first", GradingOrder::AudioFirst),
        ("largest-saving", GradingOrder::LargestSaving),
    ] {
        let p = StreamingParams {
            congestion: congested(),
            grading_order: order,
            clip_secs: 25,
            horizon: MediaTime::from_secs(50),
            ..Default::default()
        };
        let runs = run_seeds(&p, &seeds);
        // "audio quality kept": an indirect proxy — audio degrades reduce it.
        let audio_kept = match order {
            GradingOrder::AudioFirst => "sacrificed first",
            _ => "protected",
        };
        t.row(vec![
            label.to_string(),
            format!("{:.1}", mean_of(&runs, |m| m.degrades as f64)),
            format!("{:.1}", mean_of(&runs, |m| m.stops as f64)),
            audio_kept.to_string(),
            format!(
                "{:.0}",
                mean_of(&runs, |m| (m.duplicates + m.glitches + m.dropped) as f64)
            ),
        ]);
    }
    out.table(
        "EXP-ABLATE/1 — grading order under a 12 s congestion epoch",
        &t,
    );

    // --- Ablation 2: skew-repair policy ----------------------------------
    let mut t = Table::new(vec![
        "skew policy",
        "max skew (ms)",
        "duplicates",
        "dropped",
        "frames",
    ]);
    for (label, policy) in [
        ("both (paper)", SkewPolicy::Both),
        ("drop-leader only", SkewPolicy::DropLeader),
        ("duplicate-laggard only", SkewPolicy::DuplicateLaggard),
    ] {
        let mut playout = PlayoutConfig::default();
        playout.policy = policy;
        let p = StreamingParams {
            access_bps: 4_000_000,
            queue_bytes: 32 << 10,
            congestion: CongestionProfile::constant(0.35),
            jitter: JitterModel::Exponential {
                mean: MediaDuration::from_millis(2),
            },
            loss: LossModel::Bernoulli { p: 0.01 },
            playout,
            grading: false,
            clip_secs: 20,
            horizon: MediaTime::from_secs(45),
            ..Default::default()
        };
        let runs = run_seeds(&p, &seeds);
        t.row(vec![
            label.to_string(),
            fmt_dur_ms(max_dur_of(&runs, |m| m.max_skew)),
            format!("{:.0}", mean_of(&runs, |m| m.duplicates as f64)),
            format!("{:.0}", mean_of(&runs, |m| m.dropped as f64)),
            format!("{:.0}", mean_of(&runs, |m| m.frames_played as f64)),
        ]);
    }
    out.table(
        "EXP-ABLATE/2 — skew-repair policy at 35% load + 1% loss",
        &t,
    );

    // --- Ablation 3: feedback interval ------------------------------------
    let mut t = Table::new(vec![
        "feedback interval (ms)",
        "degrades",
        "upgrades",
        "disruptions",
        "net drops",
    ]);
    for &iv in &[250i64, 500, 1_000, 2_000, 4_000] {
        let p = StreamingParams {
            congestion: congested(),
            feedback_interval: MediaDuration::from_millis(iv),
            clip_secs: 25,
            horizon: MediaTime::from_secs(50),
            ..Default::default()
        };
        let runs = run_seeds(&p, &seeds);
        t.row(vec![
            iv.to_string(),
            format!("{:.1}", mean_of(&runs, |m| m.degrades as f64)),
            format!("{:.1}", mean_of(&runs, |m| m.upgrades as f64)),
            format!(
                "{:.0}",
                mean_of(&runs, |m| (m.duplicates + m.glitches + m.dropped) as f64)
            ),
            format!("{:.0}", mean_of(&runs, |m| m.net_dropped as f64)),
        ]);
    }
    out.table("EXP-ABLATE/3 — feedback-interval sensitivity", &t);
    out.line(
        "expected shapes: (1) audio-first grading spends its degrades on the cheap\n\
         audio stream and must cut deeper; video-first sheds more bandwidth per step.\n\
         (2) the combined policy bounds skew at least as well as either alone.\n\
         (3) short feedback intervals adapt faster (fewer drops during the epoch);\n\
         very long intervals react late and recover slowly.",
    );
}

//! FAULTS — resilience sweep: crash the server at different points of the
//! Fig. 2 presentation, for several client heartbeat intervals, and measure
//! how long the failure detector takes to notice and how long the full
//! reconnect-and-resume cycle takes. The session must survive every cell.

use hermes_bench::{ExpOpts, Table};
use hermes_core::{DocumentId, MediaDuration, MediaTime, ServerId};
use hermes_service::{ClientConfig, ServerConfig, WorldBuilder};
use hermes_simnet::{FaultPlan, LinkSpec, SimRng};

struct Cell {
    crash_at: MediaTime,
    heartbeat: MediaDuration,
    detected: Option<MediaDuration>,
    recovered: Option<MediaDuration>,
    completed: bool,
    errors: usize,
}

fn run_cell(
    crash_at: MediaTime,
    heartbeat: MediaDuration,
    outage: MediaDuration,
    seed: u64,
) -> Cell {
    let mut b = WorldBuilder::new(seed);
    let scfg = ServerConfig {
        heartbeat_interval: heartbeat,
        ..Default::default()
    };
    let srv = b.add_server(ServerId::new(0), LinkSpec::lan(10_000_000), scfg);
    let ccfg = ClientConfig {
        heartbeat_interval: heartbeat,
        ..Default::default()
    };
    let cli = b.add_client(LinkSpec::lan(10_000_000), ccfg);
    let mut sim = b.build(seed);
    let mut rng = SimRng::seed_from_u64(seed.wrapping_add(1));
    hermes_service::install_figure2(sim.app_mut().server_mut(srv), DocumentId::new(1), &mut rng);

    sim.install_faults(&FaultPlan::new().crash_for(srv, crash_at, outage));
    sim.with_api(|w, api| {
        w.client_mut(cli)
            .connect(api, srv, Some(DocumentId::new(1)));
    });
    sim.run_until(MediaTime::from_secs(60));

    let c = sim.app().client(cli);
    let (detected, recovered) = match c.recoveries.first() {
        Some(&(d, r)) => (Some(d - crash_at), Some(r - crash_at)),
        None => (None, None),
    };
    Cell {
        crash_at,
        heartbeat,
        detected,
        recovered,
        completed: c.completed.len() == 1,
        errors: c.errors.len(),
    }
}

fn fmt_opt(d: Option<MediaDuration>) -> String {
    match d {
        Some(d) => format!("{:.0} ms", d.as_micros() as f64 / 1000.0),
        None => "—".into(),
    }
}

fn main() {
    let opts = ExpOpts::parse();
    let mut out = opts.sink();
    let seed = opts.seed(71);
    // Crash points span the presentation: during prefill, early playout,
    // mid-playout, and near the end of the 19 s Fig. 2 timeline.
    let crash_points = [
        MediaTime::from_millis(500),
        MediaTime::from_secs(4),
        MediaTime::from_secs(8),
        MediaTime::from_secs(15),
    ];
    let heartbeats = [
        MediaDuration::from_millis(200),
        MediaDuration::from_millis(400),
        MediaDuration::from_millis(800),
    ];
    let outage = MediaDuration::from_millis(900);

    let mut t = Table::new(vec![
        "crash at",
        "heartbeat",
        "detect (after crash)",
        "recover (after crash)",
        "completed",
        "errors",
    ]);
    let mut all_ok = true;
    for &crash_at in &crash_points {
        for &hb in &heartbeats {
            let cell = run_cell(crash_at, hb, outage, seed);
            all_ok &= cell.completed && cell.errors == 0;
            t.row(vec![
                format!("{}", cell.crash_at),
                format!("{} ms", cell.heartbeat.as_micros() / 1000),
                fmt_opt(cell.detected),
                fmt_opt(cell.recovered),
                if cell.completed { "yes" } else { "NO" }.to_string(),
                cell.errors.to_string(),
            ]);
        }
    }
    out.table(
        &format!(
            "Server crash ({} ms outage) vs. client heartbeat interval",
            outage.as_micros() / 1000
        ),
        &t,
    );
    out.line("");
    out.line(
        "Detection scales with the heartbeat interval (K = 3 missed beats); \
         recovery adds one tracked-request round trip.",
    );
    assert!(all_ok, "a cell failed to recover — resilience regression");
}

//! FIG2 — reproduce the paper's example scenario (Fig. 2) end to end:
//! parse the markup, print the playout timeline (the figure's lower half),
//! render the desktop storyboard (the figure's upper half), then stream it
//! through the full service and verify playout matched the authored timing.

use hermes_bench::{ExpOpts, Table};
use hermes_client::{desktop_at, PlayoutEventKind};
use hermes_core::{ComponentId, DocumentId, MediaTime, PlayoutSchedule, ServerId};
use hermes_hml::{scenario_from_markup, FIGURE2_MARKUP};
use hermes_service::{install_figure2, ClientConfig, ServerConfig, WorldBuilder};
use hermes_simnet::{LinkSpec, SimRng};

fn main() {
    let opts = ExpOpts::parse();
    let mut out = opts.sink();
    let scenario =
        scenario_from_markup(FIGURE2_MARKUP, DocumentId::new(1), ServerId::new(0)).unwrap();
    let schedule = PlayoutSchedule::from_scenario(&scenario);

    // The timeline of the figure's lower half.
    out.line("== Fig. 2 (lower half) — playout timelines ==");
    out.line(&schedule.timeline_table());

    // Paper timeline checks: I1 [0,5), I2 [5,12), A1∥V [6,14), A2 [15,19).
    let expect = [
        (1, 0, 5_000),
        (2, 5_000, 12_000),
        (3, 6_000, 14_000),
        (4, 6_000, 14_000),
        (5, 15_000, 19_000),
    ];
    for (id, start, end) in expect {
        let e = schedule.entry(ComponentId::new(id)).unwrap();
        assert_eq!(e.start, MediaTime::from_millis(start), "cmp-{id} start");
        assert_eq!(e.end(), MediaTime::from_millis(end), "cmp-{id} end");
    }
    out.line("authored timeline matches the paper's figure ✓\n");

    // The desktop at the figure's sample instants (upper half).
    let mut t = Table::new(vec!["instant", "visible/audible components"]);
    for ms in [0, 3_000, 7_000, 13_000, 16_000] {
        let items = desktop_at(&scenario, &schedule, MediaTime::from_millis(ms));
        let desc = items
            .iter()
            .map(|i| format!("{}({})", i.kind, i.component))
            .collect::<Vec<_>>()
            .join(", ");
        t.row(vec![format!("{}s", ms / 1000), desc]);
    }
    out.table("Fig. 2 (upper half) — desktop contents over time", &t);

    // Interval-algebra analysis: the Allen relation between every component
    // pair (the paper's interval-based-model lineage, [LIT 93]).
    let mut t = Table::new(vec!["a", "b", "Allen relation"]);
    for (a, b, rel) in scenario.temporal_relations() {
        t.row(vec![a.to_string(), b.to_string(), format!("{rel:?}")]);
    }
    out.table("temporal relations between components (Allen algebra)", &t);

    // Stream it through the full service and compare achieved vs authored
    // start times.
    let seed = opts.seed(2);
    let mut b = WorldBuilder::new(seed);
    let srv = b.add_server(
        ServerId::new(0),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
    );
    let cli = b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default());
    let mut sim = b.build(seed);
    let mut rng = SimRng::seed_from_u64(seed.wrapping_add(1));
    install_figure2(sim.app_mut().server_mut(srv), DocumentId::new(1), &mut rng);
    sim.with_api(|w, api| {
        w.client_mut(cli)
            .connect(api, srv, Some(DocumentId::new(1)));
    });
    sim.run_until(MediaTime::from_secs(30));

    let c = sim.app().client(cli);
    assert!(c.errors.is_empty(), "{:?}", c.errors);
    let p = c.presentation.as_ref().unwrap();
    let t0 = p.engine.presentation_start.unwrap();
    let mut t = Table::new(vec![
        "component",
        "authored t_i",
        "achieved start",
        "offset(ms)",
    ]);
    for ev in &p.engine.events {
        if let PlayoutEventKind::Started = ev.kind {
            let authored = schedule.entry(ev.component).map(|e| e.start).unwrap();
            let achieved = ev.at - t0;
            let off = achieved.as_millis() - authored.as_millis();
            t.row(vec![
                ev.component.to_string(),
                authored.to_string(),
                format!("{:.3}s", achieved.as_secs_f64()),
                off.to_string(),
            ]);
            assert!(
                off.abs() <= 40,
                "start offset for {} is {off} ms",
                ev.component
            );
        }
    }
    out.table("streamed playout vs authored scenario (clean network)", &t);
    let (_, startup, skew) = c.completed[0];
    out.line(&format!(
        "startup delay {startup}, max A/V skew {skew}, glitches {}",
        p.engine.total_stats().glitches
    ));
    out.line("FIG2 reproduction ✓");
}

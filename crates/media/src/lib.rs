//! # hermes-media
//!
//! Media substrate: codec rate models, deterministic frame generation, the
//! per-server media store and the Media Stream Quality Converter.
//!
//! Real codecs are replaced by *rate models* (see DESIGN.md): the service
//! schedules, transmits, buffers and grades frames of known size and
//! deadline, never pixel data, so a model that reproduces each encoding's
//! frame cadence, size distribution and quality ladder exercises exactly the
//! same code paths.

#![warn(missing_docs)]

pub mod codec;
pub mod convert;
pub mod frames;
pub mod segment;
pub mod store;

pub use codec::{CodecModel, LevelParams};
pub use convert::QualityConverter;
pub use frames::{FrameSource, MediaFrame};
pub use segment::{frames_at_level, segment_bytes, segment_frames, segment_of_frame, SegmentFrame};
pub use store::{MediaObject, MediaStore};

//! Integration: flows sharing a bottleneck link interact through the queue,
//! and reservations/measured utilization reflect the sharing.

use hermes_core::{ConnectionId, MediaDuration, MediaTime, NodeId};
use hermes_simnet::{App, LinkSpec, Network, Sim, SimApi, SimRng, WireSize};

#[derive(Clone)]
struct Msg {
    flow: u8,
    size: usize,
}
impl WireSize for Msg {
    fn wire_size(&self) -> usize {
        self.size
    }
}

#[derive(Default)]
struct Collector {
    arrivals: Vec<(MediaTime, u8)>,
}
impl App<Msg> for Collector {
    fn on_message(&mut self, api: &mut SimApi<'_, Msg>, _: NodeId, _: NodeId, msg: Msg) {
        self.arrivals.push((api.now(), msg.flow));
    }
    fn on_timer(&mut self, _: &mut SimApi<'_, Msg>, _: NodeId, _: u64, _: u64) {}
}

fn n(id: u64) -> NodeId {
    NodeId::new(id)
}

/// Two senders (0, 1) feed one receiver (3) through a shared middle hop (2).
fn dumbbell(bottleneck_bps: u64, seed: u64) -> Network {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut net = Network::new();
    for (i, name) in ["srcA", "srcB", "mid", "dst"].iter().enumerate() {
        net.add_node(n(i as u64), *name);
    }
    net.add_duplex(n(0), n(2), LinkSpec::lan(100_000_000), &mut rng);
    net.add_duplex(n(1), n(2), LinkSpec::lan(100_000_000), &mut rng);
    net.add_duplex(n(2), n(3), LinkSpec::lan(bottleneck_bps), &mut rng);
    net.compute_routes();
    net
}

#[test]
fn bottleneck_serializes_competing_flows() {
    // 8 Mbps bottleneck: a 1000-byte packet takes 1 ms to serialize.
    let mut sim = Sim::new(dumbbell(8_000_000, 1), Collector::default(), 1);
    sim.with_api(|_, api| {
        for i in 0..50 {
            let _ = i;
            api.send(
                n(0),
                n(3),
                Msg {
                    flow: 0,
                    size: 1000,
                },
            );
            api.send(
                n(1),
                n(3),
                Msg {
                    flow: 1,
                    size: 1000,
                },
            );
        }
    });
    sim.run(1_000_000);
    let arr = &sim.app().arrivals;
    assert_eq!(arr.len(), 100, "all packets delivered");
    // The bottleneck serializes: consecutive arrivals are ≥ 1 ms apart
    // (within rounding), and total span ≥ 100 packet times.
    let span = arr.last().unwrap().0 - arr.first().unwrap().0;
    assert!(
        span >= MediaDuration::from_millis(98),
        "span {span} too short for 100 serialized packets"
    );
    // Both flows make progress throughout (no starvation): each half of the
    // arrival sequence contains packets of both flows.
    let half = arr.len() / 2;
    for part in [&arr[..half], &arr[half..]] {
        assert!(part.iter().any(|(_, f)| *f == 0));
        assert!(part.iter().any(|(_, f)| *f == 1));
    }
}

#[test]
fn reservations_on_shared_path_are_visible_to_both_sources() {
    let mut net = dumbbell(10_000_000, 2);
    let c1 = ConnectionId::new(1);
    // Flow A reserves 7 Mbps across the bottleneck.
    assert!(net.reserve(c1, n(0), n(3), 7_000_000));
    // Flow B sees only 3 Mbps free on its own path (shared bottleneck).
    assert_eq!(
        net.path_free_bandwidth(n(1), n(3), MediaTime::ZERO),
        Some(3_000_000)
    );
    // B can reserve 3 but not 4.
    let c2 = ConnectionId::new(2);
    assert!(!net.reserve(c2, n(1), n(3), 4_000_000));
    assert!(net.reserve(c2, n(1), n(3), 3_000_000));
    // Releasing A frees the bottleneck for B's view.
    net.release(c1);
    assert_eq!(
        net.path_free_bandwidth(n(0), n(3), MediaTime::ZERO),
        Some(7_000_000)
    );
}

#[test]
fn queue_overflow_under_burst_drops_datagrams_but_not_reliable() {
    // Tiny queue at the bottleneck; both senders burst simultaneously.
    let mut rng = SimRng::seed_from_u64(3);
    let mut net = Network::new();
    for (i, name) in ["srcA", "srcB", "mid", "dst"].iter().enumerate() {
        net.add_node(n(i as u64), *name);
    }
    net.add_duplex(n(0), n(2), LinkSpec::lan(100_000_000), &mut rng);
    net.add_duplex(n(1), n(2), LinkSpec::lan(100_000_000), &mut rng);
    let mut spec = LinkSpec::lan(2_000_000);
    spec.queue_capacity_bytes = 8_000; // 8 packets of 1000 B
    net.add_duplex(n(2), n(3), spec, &mut rng);
    net.compute_routes();

    let mut sim = Sim::new(net, Collector::default(), 3);
    sim.with_api(|_, api| {
        for _ in 0..40 {
            api.send(
                n(0),
                n(3),
                Msg {
                    flow: 0,
                    size: 1000,
                },
            );
        }
        for _ in 0..40 {
            api.send_reliable(
                n(1),
                n(3),
                Msg {
                    flow: 1,
                    size: 1000,
                },
            );
        }
    });
    sim.run(1_000_000);
    let datagrams = sim.app().arrivals.iter().filter(|(_, f)| *f == 0).count();
    let reliable = sim.app().arrivals.iter().filter(|(_, f)| *f == 1).count();
    assert!(datagrams < 40, "burst must overflow the queue: {datagrams}");
    assert_eq!(reliable, 40, "reliable retransmits through the burst");
    assert!(sim.stats().retransmissions > 0);
}

//! The chaos harness: a fixed multi-server deployment driven under seeded
//! random fault plans, judged by the global invariant checkers, with
//! delta-debugging shrinking of any failing seed.
//!
//! `exp_chaos` sweeps seeds through [`run_chaos_seed`]; a seed whose run
//! breaks an invariant is handed to [`shrink_failing`], which re-runs the
//! *same* deterministic world under smaller and smaller fault plans until
//! no event can be removed without the violation disappearing, then emits
//! the survivor as a ready-to-paste [`FaultPlan`] literal.
//!
//! The world is deliberately modest — two multimedia servers, a
//! three-node media tier, six clients — so one run is cheap enough to
//! re-execute dozens of times during shrinking, while still exercising
//! every recovery path: reconnect-and-resume, replica failover, breaker
//! trips and probes, brownout slowdowns, link flaps and partitions.

use hermes_core::{DocumentId, MediaDuration, MediaTime, NodeId, ServerId};
use hermes_service::{
    install_course, ClientConfig, LessonShape, MediaTierConfig, ServerConfig, ServiceMsg,
    ServiceWorld, WorldBuilder,
};
use hermes_simnet::obs::invariants::{check_run, InvariantConfig, Violation};
use hermes_simnet::obs::{flight_report, Event, Labels, Severity};
use hermes_simnet::{
    chaos, ChaosProfile, ChaosTargets, FaultKind, FaultPlan, LinkSpec, Sim, SimRng,
};

/// When injected faults may start.
pub const FAULTS_START: MediaTime = MediaTime::from_secs(2);
/// When the fault *schedule* ends (repairs may trail a little past this).
pub const FAULTS_END: MediaTime = MediaTime::from_secs(16);
/// When every client is told to disconnect.
const DISCONNECT_AT: MediaTime = MediaTime::from_secs(22);
/// End of run: past the disconnect by more than the server's client
/// timeout, so leaked sessions must have been reaped and all in-flight
/// media parts drained before the conservation audit.
const HORIZON: MediaTime = MediaTime::from_secs(34);
/// Grace past the last fault event before disruption events count as a
/// bounded-recovery violation.
const SETTLE: MediaDuration = MediaDuration::from_secs(8);
/// Client-death timeout in the chaos world: low enough to reap leaked
/// sessions inside the drain window, high enough to ride out any injected
/// partition plus reconnect.
const CLIENT_TIMEOUT: MediaDuration = MediaDuration::from_secs(8);

/// Shape of the fixed chaos deployment.
struct WorldIds {
    servers: Vec<NodeId>,
    media: Vec<NodeId>,
    clients: Vec<NodeId>,
    docs: Vec<(NodeId, DocumentId)>,
}

/// Outcome of one seeded chaos run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Invariant violations found (empty = run is green).
    pub violations: Vec<Violation>,
    /// Presentations completed across all clients.
    pub completed: usize,
    /// `session_abandoned` events (clients that gave up reconnecting).
    pub abandoned: usize,
    /// `session_rebuilt` events (reconnect-and-resume after server loss).
    pub rebuilds: usize,
    /// `client_expired` events (server-side reaping of dead clients).
    pub expired: usize,
    /// Trace events captured (0 when the `trace` feature is compiled out).
    pub trace_events: usize,
    /// Flight-recorder report, filled only when violations were found.
    pub flight: String,
}

fn build_world(seed: u64) -> (Sim<ServiceMsg, ServiceWorld>, WorldIds) {
    let mut b = WorldBuilder::new(seed);
    let scfg = ServerConfig {
        client_timeout: CLIENT_TIMEOUT,
        ..Default::default()
    };
    let servers = vec![
        b.add_server(ServerId::new(0), LinkSpec::lan(100_000_000), scfg.clone()),
        b.add_server(ServerId::new(1), LinkSpec::lan(100_000_000), scfg),
    ];
    let media: Vec<NodeId> = (0..3)
        .map(|_| b.add_media_node(LinkSpec::san(1_000_000_000)))
        .collect();
    b.media_config(MediaTierConfig {
        hedging: true,
        ..Default::default()
    });
    let clients: Vec<NodeId> = (0..6)
        .map(|_| b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default()))
        .collect();
    let mut sim = b.build(seed);
    let mut rng = SimRng::seed_from_u64(seed ^ 0x00DD_BA11);
    let shape = LessonShape {
        images: 0,
        image_secs: 0,
        narrated_clip_secs: Some(12),
        closing_audio_secs: None,
    };
    let mut docs = Vec::new();
    for (i, &srv) in servers.iter().enumerate() {
        let first = 1 + 100 * i as u64;
        let lessons = install_course(
            sim.app_mut().server_mut(srv),
            if i == 0 { "Chaos A" } else { "Chaos B" },
            &["chaos"],
            first,
            2,
            shape,
            &mut rng,
        );
        for d in lessons {
            docs.push((srv, d));
        }
    }
    sim.app_mut().distribute_media();
    (
        sim,
        WorldIds {
            servers,
            media,
            clients,
            docs,
        },
    )
}

/// The fault-injection targets of the fixed chaos world (node ids are
/// deterministic: the builder allocates them in construction order).
fn targets(ids: &WorldIds) -> ChaosTargets {
    ChaosTargets {
        servers: ids.servers.clone(),
        media: ids.media.clone(),
        clients: ids.clients.clone(),
        hub: NodeId::new(0),
    }
}

/// The chaos profile swept by `exp_chaos`, scaled by `--chaos-intensity`.
pub fn profile(intensity: f64) -> ChaosProfile {
    ChaosProfile::moderate(FAULTS_START, FAULTS_END).with_intensity(intensity)
}

/// Generate the fault plan of `seed` against the fixed world's targets.
pub fn plan_for_seed(seed: u64, intensity: f64) -> FaultPlan {
    // Node ids only depend on construction order, so a throwaway build is
    // not needed: reconstruct the target set from the known shape.
    let (_, ids) = build_world(seed);
    chaos::generate(seed, &targets(&ids), &profile(intensity))
}

/// Run the fixed chaos world under `plan` and judge the capture.
///
/// `sabotage` is the harness's own test fixture: when the plan contains
/// both a node crash and a link partition, two fabricated `stream_epoch`
/// events with a regressing value are appended to the captured log before
/// checking — a deliberate, deterministic invariant violation that
/// exercises the catch → shrink → report machinery end to end.
pub fn run_chaos_plan(seed: u64, plan: &FaultPlan, sabotage: bool) -> ChaosReport {
    let (mut sim, ids) = build_world(seed);
    sim.install_faults(plan);
    for (i, &cli) in ids.clients.iter().enumerate() {
        let (srv, doc) = ids.docs[i % ids.docs.len()];
        sim.with_api(|w, api| w.client_mut(cli).connect(api, srv, Some(doc)));
    }
    sim.run_until(DISCONNECT_AT);
    for &cli in &ids.clients {
        sim.with_api(|w, api| w.client_mut(cli).disconnect(api));
    }
    sim.run_until(HORIZON);

    let stats = sim.stats();
    sim.app().audit_media_parts(&stats);
    sim.publish_metrics();
    let mut obs = sim.take_obs();
    sim.app().publish_metrics(&mut obs);

    let completed = ids
        .clients
        .iter()
        .map(|&c| sim.app().client(c).completed.len())
        .sum();

    let mut events: Vec<Event> = obs.events().to_vec();
    if sabotage && has_crash_and_partition(plan) {
        inject_epoch_regression(&mut events, ids.servers[0]);
    }

    let cfg = InvariantConfig {
        last_fault_clear: plan.events().last().map(|e| e.at),
        settle: SETTLE,
    };
    let violations = check_run(&events, &obs.registry, &cfg);

    let count = |name: &str| events.iter().filter(|e| e.name == name).count();
    let mut flight = String::new();
    if !violations.is_empty() {
        // Ship context with the failure: dump every implicated node's
        // recent ring into the report.
        let mut nodes: Vec<u64> = events
            .iter()
            .rev()
            .take(64)
            .map(|e| e.node)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        nodes.truncate(4);
        for n in nodes {
            obs.dump_flight(HORIZON, n, "invariant_violation", Labels::NONE);
        }
        flight = flight_report(&obs);
    }

    ChaosReport {
        violations,
        completed,
        abandoned: count("session_abandoned"),
        rebuilds: count("session_rebuilt"),
        expired: count("client_expired"),
        trace_events: events.len(),
        flight,
    }
}

/// Generate + run one seed of the sweep.
pub fn run_chaos_seed(seed: u64, intensity: f64, sabotage: bool) -> (FaultPlan, ChaosReport) {
    let plan = plan_for_seed(seed, intensity);
    let report = run_chaos_plan(seed, &plan, sabotage);
    (plan, report)
}

/// Shrink a failing plan to a minimal reproducer: re-runs the same seeded
/// world under candidate sub-plans, keeping only events whose removal
/// makes the violation disappear. Returns the minimal plan and the
/// violations it still produces.
///
/// The predicate requires the candidate to reproduce a violation of the
/// *same invariant* as the original run, not just any violation: shrinking
/// can otherwise drift onto an artifact of its own making (dropping a
/// `LinkUp` leaves a never-healing partition whose fallout trips
/// `bounded_recovery`), and the "minimal reproducer" would then describe a
/// different failure than the one being debugged.
pub fn shrink_failing(seed: u64, plan: &FaultPlan, sabotage: bool) -> (FaultPlan, Vec<Violation>) {
    let targets: std::collections::BTreeSet<&'static str> = run_chaos_plan(seed, plan, sabotage)
        .violations
        .iter()
        .map(|v| v.invariant)
        .collect();
    let minimal = chaos::shrink(plan, |candidate| {
        run_chaos_plan(seed, candidate, sabotage)
            .violations
            .iter()
            .any(|v| targets.contains(v.invariant))
    });
    let report = run_chaos_plan(seed, &minimal, sabotage);
    (minimal, report.violations)
}

fn has_crash_and_partition(plan: &FaultPlan) -> bool {
    let crash = plan
        .raw_events()
        .iter()
        .any(|e| matches!(e.kind, FaultKind::NodeCrash { .. }));
    let cut = plan
        .raw_events()
        .iter()
        .any(|e| matches!(e.kind, FaultKind::LinkDown { .. }));
    crash && cut
}

/// Fabricate an epoch regression on `server`: two `stream_epoch` events
/// whose value goes backwards. Deterministic, unmistakable, and impossible
/// for the real service to emit unless fencing breaks.
fn inject_epoch_regression(events: &mut Vec<Event>, server: NodeId) {
    let at = events.last().map(|e| e.at).unwrap_or(MediaTime::ZERO);
    let labels = Labels::session(424_242).stream(7);
    for (i, value) in [(1, 5), (2, 3)] {
        events.push(Event {
            at,
            seq: u64::MAX - 2 + i,
            node: server.raw(),
            severity: Severity::Info,
            name: "stream_epoch",
            labels,
            value,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance fixture: a deliberately injected checker violation is
    /// caught, shrunk to a minimal plan, and reported with flight context.
    #[test]
    fn sabotaged_run_is_caught_and_shrunk() {
        let seed = 7;
        // Hand-build a plan that trips the sabotage fixture plus noise the
        // shrinker must discard.
        let s0 = NodeId::new(1);
        let m0 = NodeId::new(3);
        let hub = NodeId::new(0);
        let plan = FaultPlan::new()
            .crash_for(s0, MediaTime::from_secs(4), MediaDuration::from_secs(1))
            .partition(
                m0,
                hub,
                MediaTime::from_secs(9),
                MediaTime::from_millis(9_800),
            )
            .brownout(m0, MediaTime::from_secs(12), MediaDuration::from_secs(1), 4);
        let report = run_chaos_plan(seed, &plan, true);
        if !hermes_simnet::obs::TRACE_COMPILED {
            // No event stream to sabotage in a no-trace build.
            assert!(report.violations.is_empty());
            return;
        }
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.invariant == "epoch_monotonicity"),
            "sabotage not caught: {:?}",
            report.violations
        );
        assert!(report.flight.contains("invariant_violation"));

        let (minimal, still) = shrink_failing(seed, &plan, true);
        assert!(!still.is_empty(), "shrunk plan no longer reproduces");
        // The fixture needs exactly one crash and one partition-open; every
        // repair and the brownout are noise the shrinker must strip.
        assert_eq!(
            minimal.raw_events().len(),
            2,
            "not minimal: {}",
            minimal.to_rust_literal()
        );
        assert!(minimal.to_rust_literal().contains("FaultPlan::new()"));
    }

    /// Same seed, same plan, same world → byte-identical reports.
    #[test]
    fn chaos_runs_are_deterministic() {
        let (plan_a, a) = run_chaos_seed(11, 1.0, false);
        let (plan_b, b) = run_chaos_seed(11, 1.0, false);
        assert_eq!(plan_a.raw_events(), plan_b.raw_events());
        assert_eq!(format!("{:?}", a.violations), format!("{:?}", b.violations));
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.trace_events, b.trace_events);
    }

    /// A fault-free plan over the chaos world is green and every client
    /// finishes its lesson.
    #[test]
    fn clean_world_is_green() {
        let report = run_chaos_plan(3, &FaultPlan::new(), false);
        assert!(
            report.violations.is_empty(),
            "clean run violated invariants: {:?}",
            report.violations
        );
        assert_eq!(report.completed, 6);
        assert_eq!(report.abandoned, 0);
    }
}

//! Intermedia-skew algebra and tolerance policy.
//!
//! §4: "*Intermedia skew* refers to the difference of the arrival times among
//! media objects that should be synchronized." The short-term recovery
//! mechanism measures skew between synchronized streams and repairs it by
//! dropping frames from the stream that leads, or duplicating frames of the
//! stream that lags (after Little & Kao [LIT 92]).

use crate::media_kind::MediaKind;
use crate::time::MediaDuration;
use serde::{Deserialize, Serialize};

/// A signed skew between two streams: positive means the *subject* stream is
/// ahead of (leads) the reference stream in presented media time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Skew(pub MediaDuration);

impl Skew {
    /// Zero skew — perfect synchronization.
    pub const ZERO: Skew = Skew(MediaDuration::ZERO);

    /// Build from a signed duration (subject minus reference media position).
    pub fn new(d: MediaDuration) -> Self {
        Skew(d)
    }
    /// Magnitude of the skew.
    pub fn magnitude(self) -> MediaDuration {
        self.0.abs()
    }
    /// True iff the subject stream leads (is ahead).
    pub fn leads(self) -> bool {
        self.0 .0 > 0
    }
    /// True iff the subject stream lags (is behind).
    pub fn lags(self) -> bool {
        self.0 .0 < 0
    }
    /// Is the skew within a symmetric tolerance?
    pub fn within(self, tolerance: MediaDuration) -> bool {
        self.magnitude() <= tolerance
    }
}

/// Perceptual skew tolerances between media-kind pairs.
///
/// Defaults follow Steinmetz's classic measurements (cited in the paper's
/// related work, [STE 90]): lip-sync audio↔video ±80 ms; audio↔audio
/// (e.g. stereo-adjacent streams) tighter; anything involving discrete media
/// far looser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkewTolerance {
    /// audio ↔ video (lip sync).
    pub audio_video: MediaDuration,
    /// audio ↔ audio.
    pub audio_audio: MediaDuration,
    /// video ↔ video.
    pub video_video: MediaDuration,
    /// any continuous ↔ discrete (image/text) pairing.
    pub continuous_discrete: MediaDuration,
}

impl Default for SkewTolerance {
    fn default() -> Self {
        SkewTolerance {
            audio_video: MediaDuration::from_millis(80),
            audio_audio: MediaDuration::from_millis(11),
            video_video: MediaDuration::from_millis(120),
            continuous_discrete: MediaDuration::from_millis(500),
        }
    }
}

impl SkewTolerance {
    /// Tolerance applicable to a pair of media kinds (symmetric).
    pub fn for_pair(&self, a: MediaKind, b: MediaKind) -> MediaDuration {
        use MediaKind::*;
        match (a, b) {
            (Audio, Video) | (Video, Audio) => self.audio_video,
            (Audio, Audio) => self.audio_audio,
            (Video, Video) => self.video_video,
            _ => self.continuous_discrete,
        }
    }
}

/// The repair a skew controller should apply to restore synchronization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SkewRepair {
    /// Skew within tolerance — leave both streams alone.
    None,
    /// Drop `frames` from the leading stream ("drop frames from the stream
    /// that leads in time").
    DropFromLeader {
        /// How many frame periods of lead to remove.
        frames: u32,
    },
    /// Duplicate `frames` in the lagging stream ("duplicate frames of the
    /// lagging stream").
    DuplicateInLaggard {
        /// How many frame periods of lag to fill.
        frames: u32,
    },
}

/// Which side of a synchronized pair a repair should be applied to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairSide {
    /// Apply to the subject stream.
    Subject,
    /// Apply to the reference stream.
    Reference,
}

/// Policy choice for the EXP-ABLATE ablation: when skew exceeds tolerance,
/// either slow the leader down by dropping its queued frames, or speed the
/// laggard up by duplicating (the paper uses both together; the ablation
/// isolates each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SkewPolicy {
    /// Drop from whichever stream leads (paper's primary action).
    DropLeader,
    /// Duplicate in whichever stream lags.
    DuplicateLaggard,
    /// Split the correction between both streams (default, per [LIT 92]).
    #[default]
    Both,
}

/// Decide the repair for an observed skew.
///
/// `frame_period` is the presentation period of one frame of the stream the
/// repair is applied to; corrections are quantized to whole frames, rounding
/// up so a repair is always effective.
pub fn plan_repair(
    skew: Skew,
    tolerance: MediaDuration,
    frame_period: MediaDuration,
    policy: SkewPolicy,
) -> (SkewRepair, RepairSide) {
    assert!(
        frame_period.as_micros() > 0,
        "frame period must be positive"
    );
    if skew.within(tolerance) {
        return (SkewRepair::None, RepairSide::Subject);
    }
    let excess = skew.magnitude() - tolerance;
    let frames = ((excess.as_micros() + frame_period.as_micros() - 1) / frame_period.as_micros())
        .max(1) as u32;
    match policy {
        SkewPolicy::DropLeader => {
            if skew.leads() {
                (SkewRepair::DropFromLeader { frames }, RepairSide::Subject)
            } else {
                (SkewRepair::DropFromLeader { frames }, RepairSide::Reference)
            }
        }
        SkewPolicy::DuplicateLaggard => {
            if skew.lags() {
                (
                    SkewRepair::DuplicateInLaggard { frames },
                    RepairSide::Subject,
                )
            } else {
                (
                    SkewRepair::DuplicateInLaggard { frames },
                    RepairSide::Reference,
                )
            }
        }
        SkewPolicy::Both => {
            // Drop from leader first (cheaper: discards stale data); only
            // half the excess, the laggard duplication covers the rest when
            // the controller next runs on the partner stream.
            let half = (frames / 2).max(1);
            if skew.leads() {
                (
                    SkewRepair::DropFromLeader { frames: half },
                    RepairSide::Subject,
                )
            } else {
                (
                    SkewRepair::DuplicateInLaggard { frames: half },
                    RepairSide::Subject,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: i64) -> MediaDuration {
        MediaDuration::from_millis(v)
    }

    #[test]
    fn skew_sign_semantics() {
        let ahead = Skew::new(ms(50));
        let behind = Skew::new(ms(-50));
        assert!(ahead.leads() && !ahead.lags());
        assert!(behind.lags() && !behind.leads());
        assert_eq!(ahead.magnitude(), ms(50));
        assert_eq!(behind.magnitude(), ms(50));
        assert!(ahead.within(ms(50)));
        assert!(!ahead.within(ms(49)));
    }

    #[test]
    fn tolerance_pairs_symmetric() {
        let t = SkewTolerance::default();
        assert_eq!(
            t.for_pair(MediaKind::Audio, MediaKind::Video),
            t.for_pair(MediaKind::Video, MediaKind::Audio)
        );
        assert_eq!(t.for_pair(MediaKind::Audio, MediaKind::Video), ms(80));
        assert_eq!(t.for_pair(MediaKind::Image, MediaKind::Audio), ms(500));
    }

    #[test]
    fn no_repair_within_tolerance() {
        let (r, _) = plan_repair(Skew::new(ms(60)), ms(80), ms(40), SkewPolicy::Both);
        assert_eq!(r, SkewRepair::None);
    }

    #[test]
    fn drop_leader_targets_leading_stream() {
        // Subject leads by 200ms, tolerance 80ms, frame period 40ms → excess
        // 120ms → 3 frames.
        let (r, side) = plan_repair(Skew::new(ms(200)), ms(80), ms(40), SkewPolicy::DropLeader);
        assert_eq!(r, SkewRepair::DropFromLeader { frames: 3 });
        assert_eq!(side, RepairSide::Subject);
        // Subject lags → the *reference* is the leader.
        let (r, side) = plan_repair(Skew::new(ms(-200)), ms(80), ms(40), SkewPolicy::DropLeader);
        assert_eq!(r, SkewRepair::DropFromLeader { frames: 3 });
        assert_eq!(side, RepairSide::Reference);
    }

    #[test]
    fn duplicate_laggard_targets_lagging_stream() {
        let (r, side) = plan_repair(
            Skew::new(ms(-200)),
            ms(80),
            ms(40),
            SkewPolicy::DuplicateLaggard,
        );
        assert_eq!(r, SkewRepair::DuplicateInLaggard { frames: 3 });
        assert_eq!(side, RepairSide::Subject);
    }

    #[test]
    fn frames_round_up_and_are_at_least_one() {
        // Excess 1µs over tolerance still yields one frame of repair.
        let (r, _) = plan_repair(
            Skew::new(MediaDuration::from_micros(80_001)),
            ms(80),
            ms(40),
            SkewPolicy::DropLeader,
        );
        assert_eq!(r, SkewRepair::DropFromLeader { frames: 1 });
        // Excess 81ms with 40ms frames → ceil(81/40) = 3.
        let (r, _) = plan_repair(Skew::new(ms(161)), ms(80), ms(40), SkewPolicy::DropLeader);
        assert_eq!(r, SkewRepair::DropFromLeader { frames: 3 });
    }

    #[test]
    fn both_policy_halves_correction() {
        let (r, side) = plan_repair(Skew::new(ms(240)), ms(80), ms(40), SkewPolicy::Both);
        // excess 160ms → 4 frames → half = 2 dropped from the leader.
        assert_eq!(r, SkewRepair::DropFromLeader { frames: 2 });
        assert_eq!(side, RepairSide::Subject);
        let (r, _) = plan_repair(Skew::new(ms(-240)), ms(80), ms(40), SkewPolicy::Both);
        assert_eq!(r, SkewRepair::DuplicateInLaggard { frames: 2 });
    }

    #[test]
    #[should_panic(expected = "frame period must be positive")]
    fn zero_frame_period_rejected() {
        let _ = plan_repair(Skew::new(ms(100)), ms(80), ms(0), SkewPolicy::Both);
    }
}

//! Stochastic network-behaviour models: delay jitter, packet loss and
//! background-traffic (congestion) profiles.
//!
//! The paper's mechanisms exist precisely because "network connections are
//! experiencing significant delays, delay variation, and data loss in times
//! of network congestion"; these models generate that behaviour with
//! controlled, seedable distributions.

use crate::rng::SimRng;
use hermes_core::{MediaDuration, MediaTime};
use serde::{Deserialize, Serialize};

/// Per-packet delay-jitter model (added on top of propagation + transmission
/// delay on a link).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JitterModel {
    /// No jitter.
    None,
    /// Uniform in `[0, max]`.
    Uniform {
        /// Upper bound.
        max: MediaDuration,
    },
    /// Truncated Gaussian: `N(mean, std)`, clamped at zero.
    Gaussian {
        /// Mean added delay.
        mean: MediaDuration,
        /// Standard deviation.
        std_dev: MediaDuration,
    },
    /// Exponential with the given mean (heavy upper tail).
    Exponential {
        /// Mean added delay.
        mean: MediaDuration,
    },
    /// Pareto-distributed jitter: scale `floor`, shape `alpha_tenths`/10
    /// (integer tenths keep the model `Eq`-friendly and serializable).
    /// Heavy-tailed — models the rare multi-hundred-millisecond stalls real
    /// Internet paths exhibit.
    Pareto {
        /// Minimum added delay (the Pareto scale x_m).
        floor: MediaDuration,
        /// Shape α in tenths (e.g. 15 → α = 1.5). Must be > 10 for a
        /// finite mean.
        alpha_tenths: u32,
    },
}

impl JitterModel {
    /// Sample one jitter value (never negative).
    pub fn sample(&self, rng: &mut SimRng) -> MediaDuration {
        match self {
            JitterModel::None => MediaDuration::ZERO,
            JitterModel::Uniform { max } => {
                if max.as_micros() == 0 {
                    MediaDuration::ZERO
                } else {
                    MediaDuration::from_micros(rng.range_u64(0, max.as_micros() as u64 + 1) as i64)
                }
            }
            JitterModel::Gaussian { mean, std_dev } => {
                let v = rng.normal(mean.as_micros() as f64, std_dev.as_micros() as f64);
                MediaDuration::from_micros(v.max(0.0).round() as i64)
            }
            JitterModel::Exponential { mean } => {
                if mean.as_micros() == 0 {
                    MediaDuration::ZERO
                } else {
                    MediaDuration::from_micros(
                        rng.exponential(mean.as_micros() as f64).round() as i64
                    )
                }
            }
            JitterModel::Pareto {
                floor,
                alpha_tenths,
            } => {
                if floor.as_micros() == 0 {
                    return MediaDuration::ZERO;
                }
                let alpha = (*alpha_tenths).max(11) as f64 / 10.0;
                let v = rng.pareto(floor.as_micros() as f64, alpha);
                MediaDuration::from_micros(v.round() as i64)
            }
        }
    }
}

/// Packet-loss model for a link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LossModel {
    /// Lossless.
    None,
    /// Independent per-packet loss with probability `p`.
    Bernoulli {
        /// Loss probability in [0, 1].
        p: f64,
    },
    /// Two-state Gilbert–Elliott bursty loss.
    GilbertElliott {
        /// P(good → bad) per packet.
        p_gb: f64,
        /// P(bad → good) per packet.
        p_bg: f64,
        /// Loss probability in the good state.
        loss_good: f64,
        /// Loss probability in the bad state.
        loss_bad: f64,
    },
}

/// Mutable per-link loss state (the Gilbert–Elliott state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LossState {
    /// True while in the "bad" (bursty) state.
    pub bad: bool,
}

impl LossModel {
    /// Decide whether the next packet is lost, advancing the state.
    pub fn sample(&self, state: &mut LossState, rng: &mut SimRng) -> bool {
        match self {
            LossModel::None => false,
            LossModel::Bernoulli { p } => rng.chance(*p),
            LossModel::GilbertElliott {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
            } => {
                // Transition first, then sample loss in the new state.
                if state.bad {
                    if rng.chance(*p_bg) {
                        state.bad = false;
                    }
                } else if rng.chance(*p_gb) {
                    state.bad = true;
                }
                let p = if state.bad { *loss_bad } else { *loss_good };
                rng.chance(p)
            }
        }
    }

    /// The long-run average loss probability of the model (analytic).
    pub fn steady_state_loss(&self) -> f64 {
        match self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { p } => *p,
            LossModel::GilbertElliott {
                p_gb,
                p_bg,
                loss_good,
                loss_bad,
            } => {
                if *p_gb <= 0.0 && *p_bg <= 0.0 {
                    return *loss_good;
                }
                let pi_bad = p_gb / (p_gb + p_bg);
                (1.0 - pi_bad) * loss_good + pi_bad * loss_bad
            }
        }
    }
}

/// One epoch of a background-traffic (congestion) profile: during
/// `[start, end)` the link carries cross traffic equal to `load` of its
/// capacity, and suffers `extra_loss` additional loss probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CongestionEpoch {
    /// Epoch start (simulation time).
    pub start: MediaTime,
    /// Epoch end (exclusive).
    pub end: MediaTime,
    /// Cross-traffic load as a fraction of link capacity, in [0, 1).
    pub load: f64,
    /// Extra loss probability during the epoch.
    pub extra_loss: f64,
}

/// A schedule of congestion epochs on a link. Gaps between epochs are
/// uncongested. Epochs must be sorted and non-overlapping.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CongestionProfile {
    /// The epochs, sorted by start.
    pub epochs: Vec<CongestionEpoch>,
}

impl CongestionProfile {
    /// An always-idle profile.
    pub fn idle() -> Self {
        CongestionProfile { epochs: Vec::new() }
    }

    /// A constant load over all time.
    pub fn constant(load: f64) -> Self {
        CongestionProfile {
            epochs: vec![CongestionEpoch {
                start: MediaTime::ZERO,
                end: MediaTime::MAX,
                load,
                extra_loss: 0.0,
            }],
        }
    }

    /// Construct from epochs; panics if unsorted/overlapping or load ≥ 1.
    pub fn new(epochs: Vec<CongestionEpoch>) -> Self {
        for e in &epochs {
            assert!(e.start <= e.end, "epoch ends before it starts");
            assert!(
                (0.0..1.0).contains(&e.load),
                "load must be in [0,1): {}",
                e.load
            );
            assert!((0.0..=1.0).contains(&e.extra_loss));
        }
        for w in epochs.windows(2) {
            assert!(w[0].end <= w[1].start, "epochs overlap or are unsorted");
        }
        CongestionProfile { epochs }
    }

    /// The cross-traffic load at instant `t`.
    pub fn load_at(&self, t: MediaTime) -> f64 {
        self.epochs
            .iter()
            .find(|e| t >= e.start && t < e.end)
            .map(|e| e.load)
            .unwrap_or(0.0)
    }

    /// Extra loss probability at instant `t`.
    pub fn extra_loss_at(&self, t: MediaTime) -> f64 {
        self.epochs
            .iter()
            .find(|e| t >= e.start && t < e.end)
            .map(|e| e.extra_loss)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(123)
    }

    #[test]
    fn none_models_do_nothing() {
        let mut r = rng();
        assert_eq!(JitterModel::None.sample(&mut r), MediaDuration::ZERO);
        let mut st = LossState::default();
        assert!(!LossModel::None.sample(&mut st, &mut r));
        assert_eq!(LossModel::None.steady_state_loss(), 0.0);
    }

    #[test]
    fn uniform_jitter_bounded() {
        let mut r = rng();
        let m = JitterModel::Uniform {
            max: MediaDuration::from_millis(10),
        };
        for _ in 0..1000 {
            let j = m.sample(&mut r);
            assert!(j >= MediaDuration::ZERO && j <= MediaDuration::from_millis(10));
        }
    }

    #[test]
    fn gaussian_jitter_never_negative() {
        let mut r = rng();
        let m = JitterModel::Gaussian {
            mean: MediaDuration::from_millis(1),
            std_dev: MediaDuration::from_millis(5),
        };
        assert!((0..1000).all(|_| m.sample(&mut r) >= MediaDuration::ZERO));
    }

    #[test]
    fn exponential_jitter_mean_close() {
        let mut r = rng();
        let m = JitterModel::Exponential {
            mean: MediaDuration::from_millis(4),
        };
        let n = 20_000;
        let total: i64 = (0..n).map(|_| m.sample(&mut r).as_micros()).sum();
        let mean_us = total as f64 / n as f64;
        assert!((mean_us - 4000.0).abs() < 120.0, "mean {mean_us}");
    }

    #[test]
    fn pareto_jitter_heavy_tailed() {
        let mut r = rng();
        let m = JitterModel::Pareto {
            floor: MediaDuration::from_millis(1),
            alpha_tenths: 12, // α = 1.2: heavy tail, finite mean
        };
        let samples: Vec<MediaDuration> = (0..20_000).map(|_| m.sample(&mut r)).collect();
        // Never below the floor.
        assert!(samples.iter().all(|&s| s >= MediaDuration::from_millis(1)));
        // The tail produces rare large spikes (≥ 50× the floor).
        let spikes = samples
            .iter()
            .filter(|&&s| s >= MediaDuration::from_millis(50))
            .count();
        assert!(spikes > 10 && spikes < 2_000, "spikes {spikes}");
        // Degenerate shapes are clamped rather than panicking.
        let degenerate = JitterModel::Pareto {
            floor: MediaDuration::from_millis(1),
            alpha_tenths: 5,
        };
        let _ = degenerate.sample(&mut r);
    }

    #[test]
    fn bernoulli_rate_close() {
        let mut r = rng();
        let m = LossModel::Bernoulli { p: 0.1 };
        let mut st = LossState::default();
        let n = 50_000;
        let lost = (0..n).filter(|_| m.sample(&mut st, &mut r)).count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gilbert_elliott_bursty_and_matches_steady_state() {
        let mut r = rng();
        let m = LossModel::GilbertElliott {
            p_gb: 0.02,
            p_bg: 0.2,
            loss_good: 0.001,
            loss_bad: 0.3,
        };
        let mut st = LossState::default();
        let n = 200_000;
        let mut lost = 0usize;
        let mut burst_lens = Vec::new();
        let mut cur_burst = 0usize;
        for _ in 0..n {
            if m.sample(&mut st, &mut r) {
                lost += 1;
                cur_burst += 1;
            } else if cur_burst > 0 {
                burst_lens.push(cur_burst);
                cur_burst = 0;
            }
        }
        let rate = lost as f64 / n as f64;
        let expect = m.steady_state_loss();
        assert!((rate - expect).abs() < 0.01, "rate {rate} vs {expect}");
        // Burstiness: some bursts of ≥3 consecutive losses must occur, which
        // would be vanishingly rare at the same average rate i.i.d.
        assert!(burst_lens.iter().any(|&b| b >= 3));
    }

    #[test]
    fn steady_state_loss_analytic() {
        assert_eq!(LossModel::None.steady_state_loss(), 0.0);
        assert_eq!(LossModel::Bernoulli { p: 0.25 }.steady_state_loss(), 0.25);
        // π_bad = p_gb / (p_gb + p_bg) = 0.02 / 0.22; loss = (1-π)·lg + π·lb.
        let m = LossModel::GilbertElliott {
            p_gb: 0.02,
            p_bg: 0.2,
            loss_good: 0.001,
            loss_bad: 0.3,
        };
        let pi_bad = 0.02 / 0.22;
        let expect = (1.0 - pi_bad) * 0.001 + pi_bad * 0.3;
        assert!((m.steady_state_loss() - expect).abs() < 1e-12);
        // Degenerate chain (no transitions at all) stays in the good state.
        let frozen = LossModel::GilbertElliott {
            p_gb: 0.0,
            p_bg: 0.0,
            loss_good: 0.07,
            loss_bad: 0.9,
        };
        assert_eq!(frozen.steady_state_loss(), 0.07);
    }

    #[test]
    fn gilbert_elliott_forced_transitions_alternate() {
        // p_gb = p_bg = 1 forces a strict good/bad alternation; with
        // loss_bad = 1 and loss_good = 0 every second packet is lost,
        // starting with the first (transition happens before sampling).
        let mut r = rng();
        let m = LossModel::GilbertElliott {
            p_gb: 1.0,
            p_bg: 1.0,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        let mut st = LossState::default();
        for i in 0..100 {
            let lost = m.sample(&mut st, &mut r);
            assert_eq!(lost, i % 2 == 0, "packet {i}");
            assert_eq!(st.bad, i % 2 == 0, "state after packet {i}");
        }
        // And the analytic long-run rate agrees: π_bad = 1/2, loss = 1/2.
        assert_eq!(m.steady_state_loss(), 0.5);
    }

    #[test]
    fn congestion_epoch_boundaries() {
        let p = CongestionProfile::new(vec![CongestionEpoch {
            start: MediaTime::from_secs(10),
            end: MediaTime::from_secs(20),
            load: 0.6,
            extra_loss: 0.04,
        }]);
        let eps = MediaTime::from_micros(1) - MediaTime::ZERO;
        // Start is inclusive…
        assert_eq!(p.load_at(MediaTime::from_secs(10)), 0.6);
        assert_eq!(p.extra_loss_at(MediaTime::from_secs(10)), 0.04);
        assert_eq!(p.extra_loss_at(MediaTime::from_secs(10) - eps), 0.0);
        // …end is exclusive.
        assert_eq!(p.load_at(MediaTime::from_secs(20)), 0.0);
        assert_eq!(p.extra_loss_at(MediaTime::from_secs(20)), 0.0);
        assert_eq!(p.load_at(MediaTime::from_secs(20) - eps), 0.6);
    }

    #[test]
    fn zero_length_epoch_is_inert() {
        // start == end is accepted by the validator but matches no instant:
        // [t, t) is empty under inclusive-start/exclusive-end.
        let t = MediaTime::from_secs(5);
        let p = CongestionProfile::new(vec![CongestionEpoch {
            start: t,
            end: t,
            load: 0.9,
            extra_loss: 0.5,
        }]);
        assert_eq!(p.load_at(t), 0.0);
        assert_eq!(p.extra_loss_at(t), 0.0);
    }

    #[test]
    fn congestion_profile_lookup() {
        let p = CongestionProfile::new(vec![
            CongestionEpoch {
                start: MediaTime::from_secs(10),
                end: MediaTime::from_secs(20),
                load: 0.8,
                extra_loss: 0.05,
            },
            CongestionEpoch {
                start: MediaTime::from_secs(30),
                end: MediaTime::from_secs(40),
                load: 0.5,
                extra_loss: 0.0,
            },
        ]);
        assert_eq!(p.load_at(MediaTime::from_secs(5)), 0.0);
        assert_eq!(p.load_at(MediaTime::from_secs(15)), 0.8);
        assert_eq!(p.extra_loss_at(MediaTime::from_secs(15)), 0.05);
        assert_eq!(p.load_at(MediaTime::from_secs(25)), 0.0);
        assert_eq!(p.load_at(MediaTime::from_secs(35)), 0.5);
        assert_eq!(p.load_at(MediaTime::from_secs(40)), 0.0);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_epochs_rejected() {
        let _ = CongestionProfile::new(vec![
            CongestionEpoch {
                start: MediaTime::ZERO,
                end: MediaTime::from_secs(10),
                load: 0.5,
                extra_loss: 0.0,
            },
            CongestionEpoch {
                start: MediaTime::from_secs(5),
                end: MediaTime::from_secs(15),
                load: 0.5,
                extra_loss: 0.0,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "load must be in")]
    fn full_load_rejected() {
        let _ = CongestionProfile::constant_checked(1.0);
    }

    impl CongestionProfile {
        fn constant_checked(load: f64) -> Self {
            CongestionProfile::new(vec![CongestionEpoch {
                start: MediaTime::ZERO,
                end: MediaTime::MAX,
                load,
                extra_loss: 0.0,
            }])
        }
    }
}

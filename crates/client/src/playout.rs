//! The playout engine: deadline-driven presentation of buffered streams,
//! with the paper's two buffer-level repairs (frame duplication on
//! underflow, frame dropping on overflow) and intermedia skew enforcement
//! between synchronized streams.
//!
//! Playout follows §3.1's algorithm: each stream `S_i` has a playout process
//! that waits until its relative start time `t_i`, then plays frames at the
//! nominal rate for duration `d_i`. In the simulator the "concurrent playout
//! processes" are per-stream state machines advanced by [`PlayoutEngine::tick`].
//!
//! **Skew terminology.** The paper defines intermedia skew via *arrival*
//! times and repairs it with buffer actions: "the scheduler may drop frames
//! from the stream that leads in time or duplicate frames of the lagging
//! stream". In a deadline-driven player, the stream whose data arrives late
//! accumulates a backlog of stale frames (its *presentation* lags while its
//! *buffer* is data-rich); dropping those stale frames skips its content
//! forward — this is the "drop" repair. The stream whose partner lags can be
//! held back by replaying (duplicating) its head frame — the "duplicate"
//! repair. Both are implemented on [`MediaBuffer`] and applied here.

use crate::buffers::{BufferConfig, BufferState, MediaBuffer, Popped};
use hermes_core::{
    ComponentId, MediaDuration, MediaTime, PlayoutSchedule, Scenario, SkewPolicy, SkewTolerance,
};
use hermes_media::MediaFrame;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Lifecycle of one stream's playout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamStatus {
    /// Start deadline not reached yet.
    Pending,
    /// Playing.
    Active,
    /// All content presented (or stream stopped server-side).
    Finished,
    /// Disabled by the user ("disable the presentation of a particular
    /// media involved in the selected document", §5).
    Disabled,
}

/// A presentation event, recorded for tests, experiments and the headless
/// "browser" renderer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlayoutEventKind {
    /// Stream playout began.
    Started,
    /// A real frame was presented.
    FramePlayed {
        /// The frame's sequence number.
        seq: u64,
    },
    /// The buffer was empty at a deadline and the previous frame was
    /// replayed (underflow duplication — presentation stays smooth).
    DuplicatePlayed,
    /// The buffer was empty at a deadline and nothing could be shown — a
    /// visible glitch (gap in audio, frozen/blank video).
    Glitch,
    /// Frames were dropped to repair occupancy/skew.
    FramesDropped {
        /// How many frames.
        count: u32,
    },
    /// Stream finished.
    Finished,
}

/// A timestamped playout event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlayoutEvent {
    /// Wall (simulation) time of the event.
    pub at: MediaTime,
    /// The stream involved.
    pub component: ComponentId,
    /// What happened.
    pub kind: PlayoutEventKind,
}

/// Per-stream playout statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamPlayoutStats {
    /// Real frames presented.
    pub frames_played: u64,
    /// Duplicates presented (underflow smoothing).
    pub duplicates_played: u64,
    /// Re-delivered frames presented whose content position had already
    /// been played. Unlike `duplicates_played` (deliberate concealment
    /// replays of the *previous* frame), a stale frame means an upstream
    /// layer delivered the same content twice — this must never happen.
    pub stale_frames: u64,
    /// Visible glitches (nothing to present).
    pub glitches: u64,
    /// Frames dropped by occupancy/skew control.
    pub frames_dropped: u64,
}

/// One stream's playout state.
#[derive(Debug)]
pub struct StreamPlayout {
    /// The component being played.
    pub component: ComponentId,
    /// Scenario-relative start time `t_i`.
    pub start: MediaTime,
    /// Playout duration `d_i`.
    pub duration: MediaDuration,
    /// Frame period at nominal rate.
    pub frame_period: MediaDuration,
    /// The staging buffer (None for inline text, which needs none).
    pub buffer: Option<MediaBuffer>,
    /// Sync partners.
    pub sync_partners: Vec<ComponentId>,
    /// Lifecycle status.
    pub status: StreamStatus,
    /// Next wall-clock presentation deadline.
    next_deadline: MediaTime,
    /// Content actually presented (advances only on real frames).
    pub content_pos: MediaDuration,
    /// Statistics.
    pub stats: StreamPlayoutStats,
}

impl StreamPlayout {
    /// Expected content position at wall time `now` if playout were perfect.
    pub fn expected_pos(&self, presentation_start: MediaTime, now: MediaTime) -> MediaDuration {
        let elapsed = now - (presentation_start + (self.start - MediaTime::ZERO));
        elapsed.max(MediaDuration::ZERO).min(self.duration)
    }

    /// Presentation lag: how far behind perfect playout this stream's
    /// content is (≥ 0).
    pub fn lag(&self, presentation_start: MediaTime, now: MediaTime) -> MediaDuration {
        (self.expected_pos(presentation_start, now) - self.content_pos).max(MediaDuration::ZERO)
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlayoutConfig {
    /// Replay the last frame when the buffer underruns (the paper's
    /// short-term duplication) instead of glitching.
    pub duplicate_on_underflow: bool,
    /// Drop stale frames when a buffer goes above its high watermark.
    pub drop_on_overflow: bool,
    /// Enforce intermedia skew bounds between sync partners.
    pub enforce_sync: bool,
    /// Skew tolerances per media pair.
    pub tolerance: SkewTolerance,
    /// Which side of a skewed pair to repair.
    pub policy: SkewPolicy,
    /// Record every event (tests/experiments) or only counters.
    pub record_events: bool,
}

impl Default for PlayoutConfig {
    fn default() -> Self {
        PlayoutConfig {
            duplicate_on_underflow: true,
            drop_on_overflow: true,
            enforce_sync: true,
            tolerance: SkewTolerance::default(),
            policy: SkewPolicy::Both,
            record_events: true,
        }
    }
}

impl PlayoutConfig {
    /// A configuration with every recovery mechanism off — the baseline the
    /// EXP-SKEW experiment compares against.
    pub fn no_recovery() -> Self {
        PlayoutConfig {
            duplicate_on_underflow: false,
            drop_on_overflow: false,
            enforce_sync: false,
            ..Default::default()
        }
    }
}

/// The presentation engine for one document playout.
#[derive(Debug)]
pub struct PlayoutEngine {
    cfg: PlayoutConfig,
    /// Wall time the presentation started (set by `start`).
    pub presentation_start: Option<MediaTime>,
    streams: BTreeMap<ComponentId, StreamPlayout>,
    sync_groups: Vec<Vec<ComponentId>>,
    /// Recorded events (if `record_events`).
    pub events: Vec<PlayoutEvent>,
    /// Max absolute intermedia skew ever observed between sync partners.
    pub max_skew_observed: MediaDuration,
    /// Last repair instant per (a, b) pair — corrections are rate-limited to
    /// one per frame period so duplicates don't pile up faster than playout
    /// consumes them.
    repair_cooldown: BTreeMap<(ComponentId, ComponentId), MediaTime>,
}

impl PlayoutEngine {
    /// Build an engine from a schedule: one stream per entry, with a buffer
    /// per stored component. `frame_periods` supplies each component's frame
    /// period (from its codec model); components absent from the map are
    /// treated as single-frame discrete media.
    pub fn new(
        scenario: &Scenario,
        schedule: &PlayoutSchedule,
        buffer_cfg: BufferConfig,
        frame_periods: &BTreeMap<ComponentId, MediaDuration>,
        cfg: PlayoutConfig,
    ) -> Self {
        let mut streams = BTreeMap::new();
        for e in &schedule.entries {
            let period = frame_periods
                .get(&e.component)
                .copied()
                .unwrap_or(e.duration.max(MediaDuration::from_millis(1)));
            let buffer = e
                .buffer_slot
                .map(|_| MediaBuffer::new(e.component, buffer_cfg, period));
            streams.insert(
                e.component,
                StreamPlayout {
                    component: e.component,
                    start: e.start,
                    duration: e.duration,
                    frame_period: period,
                    buffer,
                    sync_partners: e.sync_partners.clone(),
                    status: StreamStatus::Pending,
                    next_deadline: MediaTime::MAX,
                    content_pos: MediaDuration::ZERO,
                    stats: StreamPlayoutStats::default(),
                },
            );
        }
        let sync_groups = scenario
            .sync_groups
            .iter()
            .map(|g| g.members.clone())
            .collect();
        PlayoutEngine {
            cfg,
            presentation_start: None,
            streams,
            sync_groups,
            events: Vec::new(),
            max_skew_observed: MediaDuration::ZERO,
            repair_cooldown: BTreeMap::new(),
        }
    }

    /// Mark the presentation as started at wall time `t0` (after the
    /// intentional prefill delay).
    pub fn start(&mut self, t0: MediaTime) {
        self.presentation_start = Some(t0);
        for s in self.streams.values_mut() {
            s.next_deadline = t0 + (s.start - MediaTime::ZERO);
        }
    }

    /// Shift the presentation clock forward by `delta` (pause/resume):
    /// every pending deadline moves later by the same amount; stream
    /// content positions are untouched.
    pub fn shift_clock(&mut self, delta: MediaDuration) {
        if let Some(t0) = self.presentation_start {
            self.presentation_start = Some(t0 + delta);
        }
        for s in self.streams.values_mut() {
            if s.next_deadline != MediaTime::MAX {
                s.next_deadline += delta;
            }
        }
    }

    /// Are all buffers primed (initial media time window filled)?
    /// Streams whose playout starts later than `horizon` after the
    /// presentation start are not required yet.
    pub fn buffers_primed_for_start(&self, horizon: MediaDuration) -> bool {
        self.streams.values().all(|s| {
            if (s.start - MediaTime::ZERO) > horizon {
                return true;
            }
            match &s.buffer {
                Some(b) => b.is_primed(),
                None => true,
            }
        })
    }

    /// Deliver an arriving frame into its stream's buffer.
    pub fn deliver(&mut self, frame: MediaFrame) -> bool {
        match self.streams.get_mut(&frame.component) {
            Some(s) => match &mut s.buffer {
                Some(b) => b.push(frame),
                None => false,
            },
            None => false,
        }
    }

    /// Access a stream's playout state.
    pub fn stream(&self, id: ComponentId) -> Option<&StreamPlayout> {
        self.streams.get(&id)
    }

    /// Iterate all streams.
    pub fn streams(&self) -> impl Iterator<Item = &StreamPlayout> {
        self.streams.values()
    }

    /// Disable a stream (user action); its deadlines stop being serviced.
    pub fn disable(&mut self, id: ComponentId) {
        if let Some(s) = self.streams.get_mut(&id) {
            s.status = StreamStatus::Disabled;
        }
    }

    /// Restart a stream that was stopped server-side (the grading engine
    /// upgraded it back after the network recovered). Playout resumes at
    /// the next frame period; content continues from wherever the server's
    /// frame source left off (arriving frames carry later pts, so content
    /// skips over the stopped gap).
    pub fn restart_stream(&mut self, id: ComponentId, now: MediaTime) {
        if let Some(s) = self.streams.get_mut(&id) {
            if s.status == StreamStatus::Finished && s.content_pos < s.duration {
                s.status = StreamStatus::Active;
                s.next_deadline = now + s.frame_period;
                self.push_event(now, id, PlayoutEventKind::Started);
            }
        }
    }

    /// Mark a stream finished early (server stopped transmitting it).
    pub fn finish_stream(&mut self, id: ComponentId, now: MediaTime) {
        if let Some(s) = self.streams.get_mut(&id) {
            if s.status != StreamStatus::Finished {
                s.status = StreamStatus::Finished;
                self.push_event(now, id, PlayoutEventKind::Finished);
            }
        }
    }

    fn push_event(&mut self, at: MediaTime, component: ComponentId, kind: PlayoutEventKind) {
        if self.cfg.record_events {
            self.events.push(PlayoutEvent {
                at,
                component,
                kind,
            });
        }
    }

    /// Advance playout to wall time `now`, presenting every due frame,
    /// applying occupancy repairs and (optionally) skew enforcement.
    pub fn tick(&mut self, now: MediaTime) {
        let Some(t0) = self.presentation_start else {
            return;
        };
        let ids: Vec<ComponentId> = self.streams.keys().copied().collect();
        // A stream in a sync group must never skip ahead of its slowest
        // partner by more than the tolerance. The partner's *frontier* is
        // the position it could itself reach right now (its content, or the
        // newest data in its buffer, bounded by schedule) — using the
        // frontier rather than raw content lets partners with backlog skip
        // forward together.
        let tolerance = self.cfg.tolerance.audio_video;
        let frontier: BTreeMap<ComponentId, MediaDuration> = ids
            .iter()
            .map(|id| {
                let s = &self.streams[id];
                let expected = self
                    .presentation_start
                    .map(|start| s.expected_pos(start, now))
                    .unwrap_or(MediaDuration::ZERO);
                let reachable = match &s.buffer {
                    Some(b) => match b.newest_pts() {
                        Some(pts) => (pts - MediaTime::ZERO) + s.frame_period,
                        None => s.content_pos,
                    },
                    None => expected,
                };
                (*id, s.content_pos.max(reachable).min(expected))
            })
            .collect();
        let mut caps: BTreeMap<ComponentId, MediaDuration> = BTreeMap::new();
        for id in &ids {
            let s = &self.streams[id];
            let min_partner = s
                .sync_partners
                .iter()
                .filter(|p| {
                    self.streams
                        .get(p)
                        .map(|ps| {
                            ps.status == StreamStatus::Active || ps.status == StreamStatus::Pending
                        })
                        .unwrap_or(false)
                })
                .filter_map(|p| frontier.get(p))
                .copied()
                .min();
            if let Some(mp) = min_partner {
                caps.insert(*id, mp + tolerance);
            }
        }
        for id in ids {
            let cap = caps.get(&id).copied();
            self.tick_stream(id, now, cap);
        }
        if self.cfg.enforce_sync {
            self.enforce_sync(now);
        }
        self.observe_skew(t0, now);
    }

    fn tick_stream(
        &mut self,
        id: ComponentId,
        now: MediaTime,
        catch_up_cap: Option<MediaDuration>,
    ) {
        let t0 = self.presentation_start.expect("tick_stream before start");
        let mut pending_events: Vec<(MediaTime, PlayoutEventKind)> = Vec::new();
        {
            let s = self.streams.get_mut(&id).unwrap();
            match s.status {
                StreamStatus::Disabled | StreamStatus::Finished => return,
                StreamStatus::Pending => {
                    if s.next_deadline <= now {
                        s.status = StreamStatus::Active;
                        pending_events.push((s.next_deadline, PlayoutEventKind::Started));
                    } else {
                        return;
                    }
                }
                StreamStatus::Active => {}
            }
            // Occupancy repair: overflow → drop stale frames down to the
            // nominal window.
            if self.cfg.drop_on_overflow {
                let mut expected = s.expected_pos(t0, now);
                if let Some(cap) = catch_up_cap {
                    expected = expected.min(cap);
                }
                if let Some(b) = &mut s.buffer {
                    if b.state() == BufferState::Overflow {
                        let excess = b.staged_time() - b.config().time_window;
                        let n = (excess.as_micros() / s.frame_period.as_micros()).max(1) as u32;
                        let dropped = b.drop_stale(MediaTime::ZERO + expected, n);
                        if dropped > 0 {
                            s.stats.frames_dropped += dropped as u64;
                            // Content skips forward implicitly: the next
                            // played frame carries a later pts, and playout
                            // sets content_pos from the frame's pts.
                            pending_events
                                .push((now, PlayoutEventKind::FramesDropped { count: dropped }));
                        }
                    }
                }
            }
            // Present every due frame.
            while s.next_deadline <= now && s.status == StreamStatus::Active {
                let deadline = s.next_deadline;
                if s.content_pos >= s.duration {
                    s.status = StreamStatus::Finished;
                    pending_events.push((deadline, PlayoutEventKind::Finished));
                    break;
                }
                match &mut s.buffer {
                    Some(b) => {
                        // Skip frames whose presentation window is entirely
                        // in the past (they arrived too late to matter) —
                        // except the final frame, which must terminate the
                        // stream.
                        let popped = loop {
                            match b.pop() {
                                Some(Popped::Frame(f))
                                    if !f.last
                                        && (f.pts - MediaTime::ZERO) + s.frame_period
                                            <= s.content_pos =>
                                {
                                    s.stats.frames_dropped += 1;
                                    continue;
                                }
                                other => break other,
                            }
                        };
                        match popped {
                            Some(Popped::Frame(frame)) => {
                                let advances = (frame.pts - MediaTime::ZERO) >= s.content_pos;
                                if advances {
                                    s.content_pos = (frame.pts - MediaTime::ZERO) + s.frame_period;
                                    s.stats.frames_played += 1;
                                    pending_events.push((
                                        deadline,
                                        PlayoutEventKind::FramePlayed { seq: frame.seq },
                                    ));
                                } else {
                                    s.stats.stale_frames += 1;
                                    pending_events
                                        .push((deadline, PlayoutEventKind::DuplicatePlayed));
                                }
                                if frame.last {
                                    s.status = StreamStatus::Finished;
                                    pending_events.push((deadline, PlayoutEventKind::Finished));
                                }
                            }
                            Some(Popped::Duplicate) => {
                                // Skew repair: replay the previous frame,
                                // content stalls.
                                s.stats.duplicates_played += 1;
                                pending_events.push((deadline, PlayoutEventKind::DuplicatePlayed));
                            }
                            None => {
                                if self.cfg.duplicate_on_underflow && s.stats.frames_played > 0 {
                                    // Replay the previous frame: smooth
                                    // presentation, content stalls.
                                    s.stats.duplicates_played += 1;
                                    pending_events
                                        .push((deadline, PlayoutEventKind::DuplicatePlayed));
                                } else {
                                    s.stats.glitches += 1;
                                    pending_events.push((deadline, PlayoutEventKind::Glitch));
                                }
                            }
                        }
                    }
                    None => {
                        // Inline media (text): present instantly, whole
                        // duration in one step.
                        s.content_pos = s.duration;
                        s.stats.frames_played += 1;
                        pending_events.push((deadline, PlayoutEventKind::FramePlayed { seq: 0 }));
                        s.status = StreamStatus::Finished;
                        pending_events.push((deadline, PlayoutEventKind::Finished));
                    }
                }
                s.next_deadline = deadline + s.frame_period;
            }
        }
        for (at, kind) in pending_events {
            self.push_event(at, id, kind);
        }
    }

    /// Signed content skew of `a` relative to `b` (positive: `a` leads).
    pub fn skew_between(&self, a: ComponentId, b: ComponentId) -> Option<MediaDuration> {
        let (t0, now) = (self.presentation_start?, MediaTime::ZERO);
        let _ = now;
        let sa = self.streams.get(&a)?;
        let sb = self.streams.get(&b)?;
        let _ = t0;
        // Both partners share start/duration, so content positions compare
        // directly.
        Some(sa.content_pos - sb.content_pos)
    }

    /// Enforce skew bounds within each sync group.
    fn enforce_sync(&mut self, now: MediaTime) {
        let groups = self.sync_groups.clone();
        for group in groups {
            for i in 0..group.len() {
                for j in (i + 1)..group.len() {
                    self.repair_pair(group[i], group[j], now);
                }
            }
        }
    }

    fn repair_pair(&mut self, a: ComponentId, b: ComponentId, now: MediaTime) {
        let (skew, kind_a, kind_b, period_lag, active) = {
            let (Some(sa), Some(sb)) = (self.streams.get(&a), self.streams.get(&b)) else {
                return;
            };
            let active = sa.status == StreamStatus::Active && sb.status == StreamStatus::Active;
            let skew = sa.content_pos - sb.content_pos;
            // Media kinds are encoded in tolerances via the engine config;
            // here we approximate with the pair's frame periods: take the
            // laggard's period for frame quantization.
            let laggard = if skew.is_negative() { sa } else { sb };
            (
                skew,
                sa.frame_period,
                sb.frame_period,
                laggard.frame_period,
                active,
            )
        };
        let _ = (kind_a, kind_b);
        if !active {
            return;
        }
        let tolerance = self.cfg.tolerance.audio_video;
        if skew.abs() <= tolerance {
            return;
        }
        // Rate-limit corrections to one per frame period so leader-side
        // duplicates never accumulate faster than playout consumes them.
        if let Some(&last) = self.repair_cooldown.get(&(a, b)) {
            if now - last < period_lag {
                return;
            }
        }
        self.repair_cooldown.insert((a, b), now);
        let (laggard_id, leader_id) = if skew.is_negative() { (a, b) } else { (b, a) };
        let excess = skew.abs() - tolerance;
        let frames = ((excess.as_micros() + period_lag.as_micros() - 1) / period_lag.as_micros())
            .max(1) as u32;
        match self.cfg.policy {
            SkewPolicy::DropLeader | SkewPolicy::Both => {
                // Drop the laggard's stale backlog so its content skips
                // forward (the backlogged buffer is the arrival-leading one —
                // see module docs for the terminology mapping).
                let mut corrected = 0u32;
                let t0 = self.presentation_start.expect("repair before start");
                let leader_content = self
                    .streams
                    .get(&leader_id)
                    .map(|l| l.content_pos)
                    .unwrap_or(MediaDuration::ZERO);
                if let Some(s) = self.streams.get_mut(&laggard_id) {
                    // Catch up to the leader, never past it — skipping to
                    // full schedule would overshoot by the leader's own lag.
                    let target = s.expected_pos(t0, now).min(leader_content);
                    if let Some(buf) = &mut s.buffer {
                        let dropped = buf.drop_stale(MediaTime::ZERO + target, frames);
                        if dropped > 0 {
                            s.stats.frames_dropped += dropped as u64;
                            corrected = dropped;
                        }
                    }
                }
                if corrected > 0 {
                    self.push_event(
                        now,
                        laggard_id,
                        PlayoutEventKind::FramesDropped { count: corrected },
                    );
                }
                // If nothing could be dropped (laggard starving) and policy
                // is Both, hold the leader back by replaying its head frame.
                if corrected == 0 && self.cfg.policy == SkewPolicy::Both {
                    if let Some(s) = self.streams.get_mut(&leader_id) {
                        if let Some(buf) = &mut s.buffer {
                            buf.duplicate_front(frames.min(2));
                        }
                    }
                }
            }
            SkewPolicy::DuplicateLaggard => {
                // Hold the leader back only.
                if let Some(s) = self.streams.get_mut(&leader_id) {
                    if let Some(buf) = &mut s.buffer {
                        buf.duplicate_front(frames.min(2));
                    }
                }
            }
        }
    }

    fn observe_skew(&mut self, _t0: MediaTime, _now: MediaTime) {
        for group in &self.sync_groups {
            for i in 0..group.len() {
                for j in (i + 1)..group.len() {
                    if let (Some(sa), Some(sb)) =
                        (self.streams.get(&group[i]), self.streams.get(&group[j]))
                    {
                        if sa.status == StreamStatus::Active && sb.status == StreamStatus::Active {
                            let skew = (sa.content_pos - sb.content_pos).abs();
                            self.max_skew_observed = self.max_skew_observed.max(skew);
                        }
                    }
                }
            }
        }
    }

    /// All streams finished (or disabled)?
    pub fn is_complete(&self) -> bool {
        self.streams
            .values()
            .all(|s| matches!(s.status, StreamStatus::Finished | StreamStatus::Disabled))
    }

    /// Aggregate stats over all streams.
    pub fn total_stats(&self) -> StreamPlayoutStats {
        let mut t = StreamPlayoutStats::default();
        for s in self.streams.values() {
            t.frames_played += s.stats.frames_played;
            t.duplicates_played += s.stats.duplicates_played;
            t.stale_frames += s.stats.stale_frames;
            t.glitches += s.stats.glitches;
            t.frames_dropped += s.stats.frames_dropped;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_core::schedule::PlayoutSchedule;
    use hermes_core::{
        ComponentContent, DocumentId, Encoding, GradeLevel, MediaComponent, MediaSource, Scenario,
        ServerId, SyncGroup,
    };

    /// Scenario: audio+video sync pair, both 2 s at t=0 (40 ms period).
    fn av_scenario() -> Scenario {
        let mut s = Scenario::new(DocumentId::new(1), "av");
        let stored = |id: u64, enc: Encoding| MediaComponent {
            id: ComponentId::new(id),
            content: ComponentContent::Stored {
                source: MediaSource::new(ServerId::new(0), format!("m{id}")),
                encoding: enc,
            },
            start: MediaTime::ZERO,
            duration: Some(MediaDuration::from_secs(2)),
            region: None,
            note: None,
        };
        s.components.push(stored(0, Encoding::Pcm));
        s.components.push(stored(1, Encoding::Mpeg));
        s.sync_groups.push(SyncGroup {
            members: vec![ComponentId::new(0), ComponentId::new(1)],
        });
        s
    }

    fn engine(cfg: PlayoutConfig, window_ms: i64) -> PlayoutEngine {
        let scenario = av_scenario();
        let schedule = PlayoutSchedule::from_scenario(&scenario);
        let mut periods = BTreeMap::new();
        periods.insert(ComponentId::new(0), MediaDuration::from_millis(40));
        periods.insert(ComponentId::new(1), MediaDuration::from_millis(40));
        PlayoutEngine::new(
            &scenario,
            &schedule,
            BufferConfig::with_window(MediaDuration::from_millis(window_ms)),
            &periods,
            cfg,
        )
    }

    fn frame(c: u64, seq: u64, pts_ms: i64, last: bool) -> MediaFrame {
        MediaFrame {
            component: ComponentId::new(c),
            seq,
            pts: MediaTime::from_millis(pts_ms),
            size: 1000,
            key: true,
            level: GradeLevel::NOMINAL,
            last,
        }
    }

    /// Feed both streams with paced delivery (one media time window of
    /// lead) and drive playout to completion.
    #[test]
    fn perfect_delivery_no_glitches() {
        let mut e = engine(PlayoutConfig::default(), 200);
        // Prefill exactly the media time window (5 frames at 40 ms).
        for i in 0..5 {
            e.deliver(frame(0, i, i as i64 * 40, false));
            e.deliver(frame(1, i, i as i64 * 40, false));
        }
        assert!(e.buffers_primed_for_start(MediaDuration::from_secs(1)));
        e.start(MediaTime::from_millis(500));
        // Paced: frame i arrives one window ahead of its deadline.
        let mut next = 5u64;
        for t in 0..120 {
            let now = MediaTime::from_millis(500 + t * 20);
            while next < 50 && MediaTime::from_millis(500 + next as i64 * 40 - 200) <= now {
                e.deliver(frame(0, next, next as i64 * 40, next == 49));
                e.deliver(frame(1, next, next as i64 * 40, next == 49));
                next += 1;
            }
            e.tick(now);
        }
        assert!(e.is_complete());
        let t = e.total_stats();
        assert_eq!(t.frames_played, 100);
        assert_eq!(t.glitches, 0);
        assert_eq!(t.duplicates_played, 0);
        assert_eq!(e.max_skew_observed, MediaDuration::ZERO);
    }

    #[test]
    fn starvation_duplicates_when_enabled() {
        let mut e = engine(PlayoutConfig::default(), 80);
        // Only the first 10 frames arrive before playout; the rest arrive
        // very late.
        for i in 0..10 {
            e.deliver(frame(0, i, i as i64 * 40, false));
            e.deliver(frame(1, i, i as i64 * 40, false));
        }
        e.start(MediaTime::ZERO);
        for t in 0..20 {
            e.tick(MediaTime::from_millis(t * 40));
        }
        let a = e.stream(ComponentId::new(0)).unwrap();
        assert!(a.stats.duplicates_played > 0, "{:?}", a.stats);
        assert_eq!(a.stats.glitches, 0);
    }

    #[test]
    fn starvation_glitches_when_duplication_off() {
        let mut e = engine(PlayoutConfig::no_recovery(), 80);
        for i in 0..10 {
            e.deliver(frame(0, i, i as i64 * 40, false));
            e.deliver(frame(1, i, i as i64 * 40, false));
        }
        e.start(MediaTime::ZERO);
        for t in 0..20 {
            e.tick(MediaTime::from_millis(t * 40));
        }
        let a = e.stream(ComponentId::new(0)).unwrap();
        assert!(a.stats.glitches > 0);
        assert_eq!(a.stats.duplicates_played, 0);
    }

    #[test]
    fn late_stream_creates_skew_and_sync_repairs_it() {
        // Audio arrives one window ahead of deadline; video arrives 400 ms
        // late from frame 5 onwards. Monotone tick loop every 10 ms.
        let run = |enforce: bool| {
            let cfg = PlayoutConfig {
                enforce_sync: enforce,
                ..Default::default()
            };
            let mut e = engine(cfg, 120);
            for i in 0..5 {
                e.deliver(frame(0, i, i as i64 * 40, false));
                e.deliver(frame(1, i, i as i64 * 40, false));
            }
            e.start(MediaTime::ZERO);
            let (mut next_a, mut next_v) = (5u64, 5u64);
            for t in 0..400 {
                let now = MediaTime::from_millis(t * 10);
                while next_a < 50 && MediaTime::from_millis(next_a as i64 * 40 - 120) <= now {
                    e.deliver(frame(0, next_a, next_a as i64 * 40, next_a == 49));
                    next_a += 1;
                }
                while next_v < 50 && MediaTime::from_millis(next_v as i64 * 40 - 120 + 400) <= now {
                    e.deliver(frame(1, next_v, next_v as i64 * 40, next_v == 49));
                    next_v += 1;
                }
                e.tick(now);
            }
            e.max_skew_observed
        };
        let with = run(true);
        let without = run(false);
        assert!(
            with < without,
            "sync enforcement should bound skew: with {with} without {without}"
        );
        assert!(
            without >= MediaDuration::from_millis(250),
            "without {without}"
        );
        assert!(
            with + MediaDuration::from_millis(40) <= without,
            "with {with} not meaningfully better than without {without}"
        );
    }

    #[test]
    fn overflow_dropping_clears_stale_backlog() {
        // A 1 s outage ends with the whole backlog arriving at once: the
        // stale frames (content already behind schedule) are dropped and
        // playout skips forward instead of replaying old content.
        let mut e = engine(PlayoutConfig::default(), 120);
        for i in 0..3 {
            e.deliver(frame(0, i, i as i64 * 40, false));
            e.deliver(frame(1, i, i as i64 * 40, false));
        }
        e.start(MediaTime::ZERO);
        for t in 0..25 {
            e.tick(MediaTime::from_millis(t * 40));
        }
        // Backlog of frames whose pts are all in the past arrives at t=1 s.
        for i in 3..25 {
            e.deliver(frame(0, i, i as i64 * 40, false));
            e.deliver(frame(1, i, i as i64 * 40, false));
        }
        e.tick(MediaTime::from_millis(1_000));
        e.tick(MediaTime::from_millis(1_040));
        let a = e.stream(ComponentId::new(0)).unwrap();
        assert!(a.stats.frames_dropped > 0, "{:?}", a.stats);
        let staged = a.buffer.as_ref().unwrap().staged_time();
        assert!(
            staged <= MediaDuration::from_millis(240),
            "staged {staged} should be near the window"
        );
        // Content skipped forward: the next frames played are fresh.
        assert!(
            a.content_pos >= MediaDuration::from_millis(800),
            "{}",
            a.content_pos
        );
    }

    #[test]
    fn disabled_stream_not_played() {
        let mut e = engine(PlayoutConfig::default(), 80);
        for i in 0..50 {
            e.deliver(frame(0, i, i as i64 * 40, i == 49));
            e.deliver(frame(1, i, i as i64 * 40, i == 49));
        }
        e.disable(ComponentId::new(1));
        e.start(MediaTime::ZERO);
        for t in 0..60 {
            e.tick(MediaTime::from_millis(t * 40));
        }
        assert_eq!(
            e.stream(ComponentId::new(1)).unwrap().stats.frames_played,
            0
        );
        assert!(e.stream(ComponentId::new(0)).unwrap().stats.frames_played > 0);
        assert!(e.is_complete());
    }

    #[test]
    fn inline_text_plays_without_buffer() {
        let mut scenario = av_scenario();
        scenario.components.push(MediaComponent {
            id: ComponentId::new(9),
            content: ComponentContent::Text(vec![]),
            start: MediaTime::ZERO,
            duration: Some(MediaDuration::from_secs(2)),
            region: None,
            note: None,
        });
        let schedule = PlayoutSchedule::from_scenario(&scenario);
        let mut periods = BTreeMap::new();
        periods.insert(ComponentId::new(0), MediaDuration::from_millis(40));
        periods.insert(ComponentId::new(1), MediaDuration::from_millis(40));
        let mut e = PlayoutEngine::new(
            &scenario,
            &schedule,
            BufferConfig::default(),
            &periods,
            PlayoutConfig::default(),
        );
        e.start(MediaTime::ZERO);
        e.tick(MediaTime::from_millis(1));
        let t = e.stream(ComponentId::new(9)).unwrap();
        assert_eq!(t.status, StreamStatus::Finished);
        assert_eq!(t.stats.frames_played, 1);
    }

    #[test]
    fn shift_clock_moves_deadlines_not_content() {
        let mut e = engine(PlayoutConfig::default(), 80);
        for i in 0..50 {
            e.deliver(frame(0, i, i as i64 * 40, i == 49));
            e.deliver(frame(1, i, i as i64 * 40, i == 49));
        }
        e.start(MediaTime::ZERO);
        for t in 0..10 {
            e.tick(MediaTime::from_millis(t * 40));
        }
        let before = e.stream(ComponentId::new(0)).unwrap().content_pos;
        e.shift_clock(MediaDuration::from_secs(1));
        // A tick right after the shift is before every deadline: nothing
        // plays, nothing duplicates.
        let played_before = e.total_stats().frames_played;
        e.tick(MediaTime::from_millis(400));
        assert_eq!(e.total_stats().frames_played, played_before);
        assert_eq!(e.stream(ComponentId::new(0)).unwrap().content_pos, before);
        // Resuming from the shifted clock plays cleanly to the end.
        for t in 0..70 {
            e.tick(MediaTime::from_millis(1_400 + t * 40));
        }
        assert!(e.is_complete());
        assert_eq!(e.total_stats().duplicates_played, 0);
    }

    #[test]
    fn restart_stream_semantics() {
        let mut e = engine(PlayoutConfig::default(), 80);
        for i in 0..25 {
            e.deliver(frame(0, i, i as i64 * 40, false));
            e.deliver(frame(1, i, i as i64 * 40, false));
        }
        e.start(MediaTime::ZERO);
        for t in 0..10 {
            e.tick(MediaTime::from_millis(t * 40));
        }
        // Server stops stream 1 mid-presentation.
        e.finish_stream(ComponentId::new(1), MediaTime::from_millis(400));
        assert_eq!(
            e.stream(ComponentId::new(1)).unwrap().status,
            StreamStatus::Finished
        );
        // Restart resumes it; deadlines continue from the restart instant.
        e.restart_stream(ComponentId::new(1), MediaTime::from_millis(800));
        assert_eq!(
            e.stream(ComponentId::new(1)).unwrap().status,
            StreamStatus::Active
        );
        let played_before = e.stream(ComponentId::new(1)).unwrap().stats.frames_played;
        for t in 0..30 {
            e.tick(MediaTime::from_millis(840 + t * 40));
        }
        assert!(
            e.stream(ComponentId::new(1)).unwrap().stats.frames_played > played_before,
            "restarted stream plays again"
        );
        // Restarting a Pending stream is a no-op.
        let mut e2 = engine(PlayoutConfig::default(), 80);
        e2.start(MediaTime::ZERO);
        e2.restart_stream(ComponentId::new(0), MediaTime::from_millis(100));
        assert_eq!(
            e2.stream(ComponentId::new(0)).unwrap().status,
            StreamStatus::Pending
        );
        // Restarting a naturally-completed stream is a no-op (content done).
        let mut e3 = engine(PlayoutConfig::default(), 80);
        for i in 0..50 {
            e3.deliver(frame(0, i, i as i64 * 40, i == 49));
            e3.deliver(frame(1, i, i as i64 * 40, i == 49));
        }
        e3.start(MediaTime::ZERO);
        for t in 0..60 {
            e3.tick(MediaTime::from_millis(t * 40));
        }
        assert!(e3.is_complete());
        e3.restart_stream(ComponentId::new(0), MediaTime::from_secs(3));
        assert_eq!(
            e3.stream(ComponentId::new(0)).unwrap().status,
            StreamStatus::Finished
        );
    }

    #[test]
    fn events_recorded_in_order() {
        let mut e = engine(PlayoutConfig::default(), 80);
        for i in 0..50 {
            e.deliver(frame(0, i, i as i64 * 40, i == 49));
            e.deliver(frame(1, i, i as i64 * 40, i == 49));
        }
        e.start(MediaTime::ZERO);
        for t in 0..60 {
            e.tick(MediaTime::from_millis(t * 40));
        }
        assert!(!e.events.is_empty());
        for w in e.events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        // First event is a stream start.
        assert_eq!(e.events[0].kind, PlayoutEventKind::Started);
    }

    #[test]
    fn pending_before_start_time() {
        let mut scenario = av_scenario();
        // Shift video to start at 1 s.
        scenario.components[1].start = MediaTime::from_secs(1);
        scenario.sync_groups.clear(); // timings now differ
        let schedule = PlayoutSchedule::from_scenario(&scenario);
        let mut periods = BTreeMap::new();
        periods.insert(ComponentId::new(0), MediaDuration::from_millis(40));
        periods.insert(ComponentId::new(1), MediaDuration::from_millis(40));
        let mut e = PlayoutEngine::new(
            &scenario,
            &schedule,
            BufferConfig::with_window(MediaDuration::from_millis(80)),
            &periods,
            PlayoutConfig::default(),
        );
        for i in 0..50 {
            e.deliver(frame(1, i, i as i64 * 40, i == 49));
        }
        e.start(MediaTime::ZERO);
        e.tick(MediaTime::from_millis(500));
        assert_eq!(
            e.stream(ComponentId::new(1)).unwrap().status,
            StreamStatus::Pending
        );
        e.tick(MediaTime::from_millis(1_000));
        assert_eq!(
            e.stream(ComponentId::new(1)).unwrap().status,
            StreamStatus::Active
        );
    }
}

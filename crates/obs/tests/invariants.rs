//! Property tests for the global invariant checkers: each checker must
//! fire on exactly the synthetic stream that encodes its violation and
//! stay quiet on the corresponding clean stream. The checkers judge the
//! chaos harness's runs, so a checker that over- or under-fires silently
//! corrupts every sweep verdict.

use hermes_core::{MediaDuration, MediaTime};
use hermes_obs::invariants::{
    check_bounded_recovery, check_breaker_legality, check_conservation, check_epoch_monotonicity,
    check_frame_discipline, check_run, check_session_lifecycle, InvariantConfig,
};
use hermes_obs::{Event, Labels, MetricsRegistry, Severity};

/// Synthetic event with deterministic (at, seq) ordering.
fn ev(at_ms: i64, seq: u64, node: u64, name: &'static str, labels: Labels, value: i64) -> Event {
    Event {
        at: MediaTime::from_millis(at_ms),
        seq,
        node,
        severity: Severity::Info,
        name,
        labels,
        value,
    }
}

#[test]
fn epoch_monotonicity_accepts_increasing_rejects_regression() {
    let clean = vec![
        ev(1, 0, 1, "stream_epoch", Labels::session(7).stream(3), 1),
        ev(2, 1, 1, "stream_epoch", Labels::session(7).stream(3), 2),
        // A different stream restarts its own numbering — independent key.
        ev(3, 2, 1, "stream_epoch", Labels::session(7).stream(4), 1),
        // Same (session, stream) on a different server node — independent.
        ev(4, 3, 2, "stream_epoch", Labels::session(7).stream(3), 1),
        ev(5, 4, 1, "group_epoch", Labels::NONE.stream(9), 1),
        ev(6, 5, 1, "group_epoch", Labels::NONE.stream(9), 2),
    ];
    assert!(check_epoch_monotonicity(&clean).is_empty());

    let mut bad = clean.clone();
    bad.push(ev(7, 6, 1, "stream_epoch", Labels::session(7).stream(3), 2));
    let v = check_epoch_monotonicity(&bad);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].invariant, "epoch_monotonicity");
    assert_eq!(v[0].at, MediaTime::from_millis(7));

    // An equal (non-increasing) epoch is also a regression.
    let mut stuck = clean.clone();
    stuck.push(ev(8, 7, 1, "group_epoch", Labels::NONE.stream(9), 2));
    assert_eq!(check_epoch_monotonicity(&stuck).len(), 1);
}

#[test]
fn session_lifecycle_requires_exactly_one_terminal_state() {
    let clean = vec![
        ev(1, 0, 1, "session_connect", Labels::session(1).peer(6), 0),
        ev(2, 1, 1, "session_crash_lost", Labels::session(1).peer(6), 0),
        // Rebuild supersedes session 1 (already closed by the crash: fine)
        // and opens session 2.
        ev(3, 2, 1, "session_rebuilt", Labels::session(2).peer(6), 1),
        ev(4, 3, 1, "session_teardown", Labels::session(2).peer(6), 0),
        // Same session id on another server node is a distinct session.
        ev(5, 4, 2, "session_connect", Labels::session(1).peer(7), 0),
        ev(6, 5, 2, "session_teardown", Labels::session(1).peer(7), 0),
    ];
    assert!(check_session_lifecycle(&clean).is_empty());

    // Leak: a session still open when the log ends.
    let mut leak = clean.clone();
    leak.push(ev(
        7,
        6,
        1,
        "session_connect",
        Labels::session(3).peer(6),
        0,
    ));
    let v = check_session_lifecycle(&leak);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].detail.contains("leaked"), "{}", v[0].detail);

    // Double close.
    let mut double = clean.clone();
    double.push(ev(
        7,
        6,
        1,
        "session_teardown",
        Labels::session(2).peer(6),
        0,
    ));
    let v = check_session_lifecycle(&double);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].detail.contains("double close"), "{}", v[0].detail);

    // Close of a session that never existed.
    let mut ghost = clean.clone();
    ghost.push(ev(
        7,
        6,
        1,
        "session_teardown",
        Labels::session(9).peer(6),
        0,
    ));
    let v = check_session_lifecycle(&ghost);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].detail.contains("never opened"), "{}", v[0].detail);

    // Re-open of a live session.
    let mut reopen = clean.clone();
    reopen.push(ev(
        7,
        6,
        2,
        "session_connect",
        Labels::session(2).peer(7),
        0,
    ));
    reopen.push(ev(
        8,
        7,
        2,
        "session_connect",
        Labels::session(2).peer(7),
        0,
    ));
    let v = check_session_lifecycle(&reopen);
    // The re-open fires once; the (still open) session also leaks.
    assert!(v.iter().any(|v| v.detail.contains("re-opened")), "{v:?}");

    // Rebuild superseding a session id nobody ever opened.
    let mut phantom = clean.clone();
    phantom.push(ev(
        7,
        6,
        1,
        "session_rebuilt",
        Labels::session(4).peer(6),
        42,
    ));
    phantom.push(ev(
        8,
        7,
        1,
        "session_teardown",
        Labels::session(4).peer(6),
        0,
    ));
    let v = check_session_lifecycle(&phantom);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(
        v[0].detail.contains("unknown session 42"),
        "{}",
        v[0].detail
    );
}

#[test]
fn session_lifecycle_client_fate_is_coherent() {
    let clean = vec![
        ev(1, 0, 6, "session_abandoned", Labels::session(1), 0),
        // Completing a *different* session afterwards is fine.
        ev(2, 1, 6, "presentation_complete", Labels::session(2), 0),
    ];
    assert!(check_session_lifecycle(&clean).is_empty());

    let conflicted = vec![
        ev(1, 0, 6, "session_abandoned", Labels::session(1), 0),
        ev(2, 1, 6, "presentation_complete", Labels::session(1), 0),
    ];
    let v = check_session_lifecycle(&conflicted);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(
        v[0].detail.contains("abandoned at 1000µs"),
        "{}",
        v[0].detail
    );

    let twice = vec![
        ev(1, 0, 6, "session_abandoned", Labels::session(1), 0),
        ev(2, 1, 6, "session_abandoned", Labels::session(1), 0),
    ];
    let v = check_session_lifecycle(&twice);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].detail.contains("abandoned twice"), "{}", v[0].detail);
}

#[test]
fn frame_discipline_flags_stale_frames_not_concealment() {
    let mut clean = MetricsRegistry::new();
    clean.counter_set("client.frames_played", Labels::for_peer(6), 500);
    // Concealment replays are deliberate degraded-mode behavior.
    clean.counter_set("client.duplicates_played", Labels::for_peer(6), 11);
    clean.counter_set("client.stale_frames", Labels::for_peer(6), 0);
    assert!(check_frame_discipline(&clean).is_empty());

    let mut bad = MetricsRegistry::new();
    bad.counter_set("client.stale_frames", Labels::for_peer(6), 3);
    let v = check_frame_discipline(&bad);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].invariant, "frame_discipline");
    assert!(v[0].detail.contains("3 stale frames"), "{}", v[0].detail);
}

#[test]
fn breaker_legality_follows_the_state_machine() {
    let clean = vec![
        ev(1, 0, 1, "breaker_trip", Labels::for_peer(3), 0),
        ev(2, 1, 1, "breaker_probe", Labels::for_peer(3), 0),
        // Failed probe re-trips from HalfOpen.
        ev(3, 2, 1, "breaker_trip", Labels::for_peer(3), 0),
        ev(4, 3, 1, "breaker_probe", Labels::for_peer(3), 0),
        ev(5, 4, 1, "breaker_close", Labels::for_peer(3), 0),
        // Reset is legal from any state.
        ev(6, 5, 1, "breaker_reset", Labels::for_peer(3), 0),
        // Independent circuit for another replica.
        ev(7, 6, 1, "breaker_trip", Labels::for_peer(4), 0),
    ];
    assert!(check_breaker_legality(&clean).is_empty());

    // Double trip without an intervening probe.
    let double_trip = vec![
        ev(1, 0, 1, "breaker_trip", Labels::for_peer(3), 0),
        ev(2, 1, 1, "breaker_trip", Labels::for_peer(3), 0),
    ];
    let v = check_breaker_legality(&double_trip);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(
        v[0].detail.contains("illegal from state Open"),
        "{}",
        v[0].detail
    );

    // Close straight from Open (no probe).
    let skip_probe = vec![
        ev(1, 0, 1, "breaker_trip", Labels::for_peer(3), 0),
        ev(2, 1, 1, "breaker_close", Labels::for_peer(3), 0),
    ];
    assert_eq!(check_breaker_legality(&skip_probe).len(), 1);

    // Probe while Closed.
    let cold_probe = vec![ev(1, 0, 1, "breaker_probe", Labels::for_peer(3), 0)];
    assert_eq!(check_breaker_legality(&cold_probe).len(), 1);

    // A crash of the server node resets its volatile breaker map: a fresh
    // trip right after is legal, and the checker must scope the reset to
    // the crashed node only.
    let crash_reset = vec![
        ev(1, 0, 1, "breaker_trip", Labels::for_peer(3), 0),
        ev(2, 1, 2, "breaker_trip", Labels::for_peer(3), 0),
        ev(3, 2, 1, "node_crash", Labels::NONE, 0),
        ev(4, 3, 1, "breaker_trip", Labels::for_peer(3), 0),
        // Node 2 did not crash — its circuit is still Open.
        ev(5, 4, 2, "breaker_trip", Labels::for_peer(3), 0),
    ];
    let v = check_breaker_legality(&crash_reset);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].at, MediaTime::from_millis(5));
}

#[test]
fn conservation_balances_sent_received_and_the_fault_ledger() {
    let mut clean = MetricsRegistry::new();
    clean.counter_set("media.parts_sent", Labels::for_peer(3), 100);
    clean.counter_set("media.parts_sent", Labels::for_peer(4), 50);
    clean.counter_set("server.parts_received", Labels::for_peer(1), 140);
    clean.counter_set("sim.fault_drops", Labels::NONE, 7);
    clean.counter_set("sim.reliable_failures", Labels::NONE, 3);
    clean.counter_set("server.fetches", Labels::for_peer(1), 20);
    clean.counter_set("server.chunks", Labels::for_peer(1), 20);
    assert!(check_conservation(&clean).is_empty());

    // More parts lost than the ledger explains.
    let mut leak = MetricsRegistry::new();
    leak.counter_set("media.parts_sent", Labels::for_peer(3), 100);
    leak.counter_set("server.parts_received", Labels::for_peer(1), 80);
    leak.counter_set("sim.fault_drops", Labels::NONE, 5);
    let v = check_conservation(&leak);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].detail.contains("leaked"), "{}", v[0].detail);

    // Receiving more than was ever sent (duplication).
    let mut dup = MetricsRegistry::new();
    dup.counter_set("media.parts_sent", Labels::for_peer(3), 10);
    dup.counter_set("server.parts_received", Labels::for_peer(1), 12);
    let v = check_conservation(&dup);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].detail.contains("received 12"), "{}", v[0].detail);

    // More completed fetches than issued.
    let mut fetch = MetricsRegistry::new();
    fetch.counter_set("server.fetches", Labels::for_peer(1), 5);
    fetch.counter_set("server.chunks", Labels::for_peer(1), 6);
    assert_eq!(check_conservation(&fetch).len(), 1);
}

#[test]
fn bounded_recovery_honours_the_settle_window() {
    let clear = MediaTime::from_secs(10);
    let settle = MediaDuration::from_secs(5);
    let clean = vec![
        // Disruption during the fault window and inside the settle window
        // is legitimate fallout.
        ev(9_000, 0, 6, "playout_gap", Labels::session(1), 2),
        ev(14_999, 1, 1, "breaker_trip", Labels::for_peer(3), 0),
        // Benign events after the deadline don't count.
        ev(20_000, 2, 6, "presentation_complete", Labels::session(1), 0),
    ];
    assert!(check_bounded_recovery(&clean, clear, settle).is_empty());

    let mut late = clean.clone();
    late.push(ev(15_001, 3, 6, "server_silent", Labels::session(1), 3));
    let v = check_bounded_recovery(&late, clear, settle);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].invariant, "bounded_recovery");
    assert!(v[0].detail.contains("1000µs past"), "{}", v[0].detail);
}

#[test]
fn check_run_aggregates_and_gates_bounded_recovery_on_config() {
    let events = vec![
        ev(1, 0, 1, "session_connect", Labels::session(1).peer(6), 0),
        // Leak (never closed) + a late disruption event.
        ev(30_000, 1, 6, "playout_gap", Labels::session(1), 1),
    ];
    let registry = MetricsRegistry::new();

    // Default config: bounded recovery disabled, only the leak fires.
    let v = check_run(&events, &registry, &InvariantConfig::default());
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].invariant, "session_lifecycle");

    // With a fault-clear instant, the late playout_gap fires too.
    let cfg = InvariantConfig {
        last_fault_clear: Some(MediaTime::from_secs(10)),
        settle: MediaDuration::from_secs(5),
    };
    let v = check_run(&events, &registry, &cfg);
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v.iter().any(|v| v.invariant == "bounded_recovery"));
}

//! The Server QoS Manager and the media-grading engine — the paper's
//! *long-term* synchronization recovery (§4).
//!
//! "Using such feedback reports, the service's server possesses knowledge of
//! the overall network performance parameters, and accordingly takes
//! corrective actions ... \[the\] flow scheduler identifies the specific media
//! streams that are not transmitted as desired, and in cooperation with the
//! corresponding Media Stream Quality Converter gracefully degrades
//! (upgrades) the stream's quality ... the service first applies the grading
//! technique to the video stream, since audio or voice is considered to be
//! more important to users."

use hermes_core::{
    ComponentId, GradeDecision, GradeLevel, GradingHysteresis, GradingOrder, MediaKind,
    QosMeasurement, QosRequirement,
};
use hermes_media::{CodecModel, QualityConverter};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One stream under grading management.
#[derive(Debug)]
pub struct ManagedStream {
    /// The quality converter owned by the stream's media server.
    pub converter: QualityConverter,
    /// The stream's declared QoS requirement (congestion scores are
    /// normalized against it).
    pub requirement: QosRequirement,
    /// Media kind (drives the degrade order).
    pub kind: MediaKind,
    /// Consecutive healthy reports seen (for upgrade patience).
    healthy_streak: u32,
    /// The latest congestion score.
    pub last_score: f64,
}

/// An action the manager instructs a media server to take.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GradingAction {
    /// Which stream.
    pub component: ComponentId,
    /// What to do.
    pub decision: GradeDecision,
    /// The level after applying the decision.
    pub new_level: GradeLevel,
    /// Whether the stream is stopped after the decision.
    pub stopped: bool,
}

/// The server-side QoS manager: ingests client feedback, ranks streams and
/// walks their quality converters.
#[derive(Debug)]
pub struct ServerQosManager {
    streams: BTreeMap<ComponentId, ManagedStream>,
    /// Degrade ordering policy (video-first per the paper; ablations flip it).
    pub order: GradingOrder,
    /// Hysteresis thresholds.
    pub hysteresis: GradingHysteresis,
    /// Total degrade actions issued.
    pub degrades_issued: u64,
    /// Total upgrade actions issued.
    pub upgrades_issued: u64,
    /// Total stop actions issued.
    pub stops_issued: u64,
}

impl ServerQosManager {
    /// Manager with a policy and hysteresis.
    pub fn new(order: GradingOrder, hysteresis: GradingHysteresis) -> Self {
        assert!(hysteresis.is_valid(), "invalid hysteresis dead-band");
        ServerQosManager {
            streams: BTreeMap::new(),
            order,
            hysteresis,
            degrades_issued: 0,
            upgrades_issued: 0,
            stops_issued: 0,
        }
    }

    /// Paper-default manager: video first, default hysteresis.
    pub fn paper_default() -> Self {
        Self::new(GradingOrder::default(), GradingHysteresis::default())
    }

    /// Register a stream with its codec model, floor and requirement.
    pub fn register(
        &mut self,
        component: ComponentId,
        model: CodecModel,
        floor: GradeLevel,
        requirement: QosRequirement,
    ) {
        let kind = model.kind();
        self.streams.insert(
            component,
            ManagedStream {
                converter: QualityConverter::new(model, floor),
                requirement,
                kind,
                healthy_streak: 0,
                last_score: 0.0,
            },
        );
    }

    /// Remove a stream (presentation finished).
    pub fn unregister(&mut self, component: ComponentId) {
        self.streams.remove(&component);
    }

    /// Force a stream's converter to a level (admission-time shedding: under
    /// pressure a session starts its streams pre-degraded instead of being
    /// rejected outright). Clamped to the codec ladder.
    pub fn force_level(&mut self, component: ComponentId, level: GradeLevel) {
        if let Some(s) = self.streams.get_mut(&component) {
            s.converter.level = level.min(s.converter.model.max_level());
        }
    }

    /// The managed stream, if registered.
    pub fn stream(&self, component: ComponentId) -> Option<&ManagedStream> {
        self.streams.get(&component)
    }

    /// Current level of a stream.
    pub fn level_of(&self, component: ComponentId) -> Option<GradeLevel> {
        self.streams.get(&component).map(|s| s.converter.level)
    }

    /// Total bandwidth of all managed streams at their current levels.
    pub fn total_bandwidth_bps(&self) -> u64 {
        self.streams
            .values()
            .map(|s| s.converter.current_bandwidth_bps())
            .sum()
    }

    /// Ingest one feedback report (a set of per-stream measurements taken by
    /// the client QoS manager) and decide the grading actions. At most one
    /// degrade and one upgrade action are issued per report — graceful,
    /// stepwise adaptation.
    pub fn on_feedback(&mut self, report: &[(ComponentId, QosMeasurement)]) -> Vec<GradingAction> {
        let mut actions = Vec::new();
        // Update scores and streaks.
        for (id, m) in report {
            if let Some(s) = self.streams.get_mut(id) {
                s.last_score = m.congestion_score(&s.requirement);
                if s.last_score < self.hysteresis.upgrade_below {
                    s.healthy_streak += 1;
                } else {
                    s.healthy_streak = 0;
                }
            }
        }
        let any_congested = self
            .streams
            .values()
            .any(|s| s.last_score > self.hysteresis.degrade_above);
        if any_congested {
            // Pick the degrade victim: lowest degrade-rank first (video
            // before audio under the paper's rule), tie-broken by largest
            // bandwidth saving, skipping streams that cannot yield any.
            let order = self.order;
            let victim = self
                .streams
                .iter()
                .filter(|(_, s)| !s.converter.stopped && s.converter.next_step_saving() > 0)
                .min_by(|(_, a), (_, b)| {
                    let ra = order.degrade_rank(a.kind);
                    let rb = order.degrade_rank(b.kind);
                    ra.cmp(&rb).then(
                        b.converter
                            .next_step_saving()
                            .cmp(&a.converter.next_step_saving()),
                    )
                })
                .map(|(id, _)| *id);
            if let Some(id) = victim {
                let s = self.streams.get_mut(&id).unwrap();
                let applied = s.converter.apply(GradeDecision::Degrade);
                match applied {
                    GradeDecision::Degrade => self.degrades_issued += 1,
                    GradeDecision::Stop => self.stops_issued += 1,
                    _ => {}
                }
                if applied != GradeDecision::Hold {
                    actions.push(GradingAction {
                        component: id,
                        decision: applied,
                        new_level: s.converter.level,
                        stopped: s.converter.stopped,
                    });
                }
            }
        } else {
            // Upgrade when every stream has been healthy long enough:
            // restore in reverse degrade order (audio back first under the
            // video-first rule), most-degraded first within a rank.
            let all_patient = !self.streams.is_empty()
                && self
                    .streams
                    .values()
                    .all(|s| s.healthy_streak >= self.hysteresis.upgrade_patience);
            if all_patient {
                let order = self.order;
                let candidate = self
                    .streams
                    .iter()
                    .filter(|(_, s)| s.converter.stopped || s.converter.level > GradeLevel::NOMINAL)
                    .max_by(|(_, a), (_, b)| {
                        let ra = order.degrade_rank(a.kind);
                        let rb = order.degrade_rank(b.kind);
                        ra.cmp(&rb).then(a.converter.level.cmp(&b.converter.level))
                    })
                    .map(|(id, _)| *id);
                if let Some(id) = candidate {
                    let s = self.streams.get_mut(&id).unwrap();
                    let applied = s.converter.apply(GradeDecision::Upgrade);
                    if applied == GradeDecision::Upgrade {
                        self.upgrades_issued += 1;
                        s.healthy_streak = 0;
                        actions.push(GradingAction {
                            component: id,
                            decision: applied,
                            new_level: s.converter.level,
                            stopped: s.converter.stopped,
                        });
                    }
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_core::{Encoding, MediaDuration, MediaTime};

    fn measurement(score_delay_ms: i64) -> QosMeasurement {
        QosMeasurement {
            window_end: MediaTime::ZERO,
            mean_delay: MediaDuration::from_millis(score_delay_ms),
            jitter: MediaDuration::ZERO,
            loss_fraction: 0.0,
            packets_received: 100,
            buffer_occupancy: 0.5,
        }
    }

    /// Requirement with max_delay 100 ms → delay 150 ms = score 1.5.
    fn req() -> QosRequirement {
        QosRequirement::continuous(1_000_000, 100, 0.02)
    }

    fn manager_with_av() -> ServerQosManager {
        let mut m = ServerQosManager::paper_default();
        m.register(
            ComponentId::new(1),
            CodecModel::for_encoding(Encoding::Pcm),
            GradeLevel(2),
            req(),
        );
        m.register(
            ComponentId::new(2),
            CodecModel::for_encoding(Encoding::Mpeg),
            GradeLevel(4),
            req(),
        );
        m
    }

    #[test]
    fn video_degraded_before_audio() {
        let mut m = manager_with_av();
        let congested = vec![
            (ComponentId::new(1), measurement(150)),
            (ComponentId::new(2), measurement(150)),
        ];
        let a = m.on_feedback(&congested);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].component, ComponentId::new(2)); // the video stream
        assert_eq!(a[0].decision, GradeDecision::Degrade);
        assert_eq!(m.level_of(ComponentId::new(1)), Some(GradeLevel(0)));
        assert_eq!(m.level_of(ComponentId::new(2)), Some(GradeLevel(1)));
    }

    #[test]
    fn audio_first_ablation_flips_order() {
        let mut m = ServerQosManager::new(GradingOrder::AudioFirst, GradingHysteresis::default());
        m.register(
            ComponentId::new(1),
            CodecModel::for_encoding(Encoding::Pcm),
            GradeLevel(2),
            req(),
        );
        m.register(
            ComponentId::new(2),
            CodecModel::for_encoding(Encoding::Mpeg),
            GradeLevel(4),
            req(),
        );
        let congested = vec![
            (ComponentId::new(1), measurement(150)),
            (ComponentId::new(2), measurement(150)),
        ];
        let a = m.on_feedback(&congested);
        assert_eq!(a[0].component, ComponentId::new(1)); // audio degraded first
    }

    #[test]
    fn sustained_congestion_walks_video_to_stop_then_audio() {
        let mut m = manager_with_av();
        let congested = vec![
            (ComponentId::new(1), measurement(150)),
            (ComponentId::new(2), measurement(150)),
        ];
        let mut stops = 0;
        for _ in 0..12 {
            for act in m.on_feedback(&congested) {
                if act.decision == GradeDecision::Stop {
                    stops += 1;
                }
            }
        }
        // Video: 4 degrades + stop; audio: 2 degrades + stop.
        assert_eq!(stops, 2);
        assert!(m.stream(ComponentId::new(2)).unwrap().converter.stopped);
        assert!(m.stream(ComponentId::new(1)).unwrap().converter.stopped);
        assert_eq!(m.total_bandwidth_bps(), 0);
        assert_eq!(m.degrades_issued, 6);
    }

    #[test]
    fn upgrade_requires_patience() {
        let mut m = manager_with_av();
        let congested = vec![
            (ComponentId::new(1), measurement(150)),
            (ComponentId::new(2), measurement(150)),
        ];
        m.on_feedback(&congested); // video → level 1
        let healthy = vec![
            (ComponentId::new(1), measurement(10)),
            (ComponentId::new(2), measurement(10)),
        ];
        // Default patience is 3 healthy reports.
        assert!(m.on_feedback(&healthy).is_empty());
        assert!(m.on_feedback(&healthy).is_empty());
        let a = m.on_feedback(&healthy);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].decision, GradeDecision::Upgrade);
        assert_eq!(m.level_of(ComponentId::new(2)), Some(GradeLevel(0)));
    }

    #[test]
    fn upgrade_restores_audio_before_video() {
        let mut m = manager_with_av();
        let congested = vec![
            (ComponentId::new(1), measurement(150)),
            (ComponentId::new(2), measurement(150)),
        ];
        // Degrade video fully (4 + stop) then audio once: 6 rounds.
        for _ in 0..6 {
            m.on_feedback(&congested);
        }
        assert_eq!(m.level_of(ComponentId::new(1)), Some(GradeLevel(1)));
        let healthy = vec![
            (ComponentId::new(1), measurement(10)),
            (ComponentId::new(2), measurement(10)),
        ];
        let mut first_upgrade = None;
        for _ in 0..10 {
            let acts = m.on_feedback(&healthy);
            if let Some(a) = acts.first() {
                first_upgrade = Some(a.component);
                break;
            }
        }
        assert_eq!(
            first_upgrade,
            Some(ComponentId::new(1)),
            "audio restored first"
        );
    }

    #[test]
    fn healthy_network_never_degrades() {
        let mut m = manager_with_av();
        let healthy = vec![
            (ComponentId::new(1), measurement(10)),
            (ComponentId::new(2), measurement(10)),
        ];
        for _ in 0..10 {
            let acts = m.on_feedback(&healthy);
            assert!(acts.is_empty(), "{acts:?}");
        }
        assert_eq!(m.degrades_issued, 0);
    }

    #[test]
    fn mid_band_scores_hold() {
        // Score between upgrade_below (0.5) and degrade_above (1.0): no
        // action ever (the hysteresis dead-band).
        let mut m = manager_with_av();
        let mid = vec![
            (ComponentId::new(1), measurement(70)),
            (ComponentId::new(2), measurement(70)),
        ];
        m.on_feedback(&[
            (ComponentId::new(1), measurement(150)),
            (ComponentId::new(2), measurement(150)),
        ]); // degrade once
        for _ in 0..10 {
            assert!(m.on_feedback(&mid).is_empty());
        }
        assert_eq!(m.level_of(ComponentId::new(2)), Some(GradeLevel(1)));
    }

    #[test]
    fn unregister_removes_stream() {
        let mut m = manager_with_av();
        m.unregister(ComponentId::new(2));
        assert!(m.stream(ComponentId::new(2)).is_none());
        assert!(m.level_of(ComponentId::new(1)).is_some());
    }

    #[test]
    #[should_panic(expected = "invalid hysteresis")]
    fn invalid_hysteresis_rejected() {
        let _ = ServerQosManager::new(
            GradingOrder::VideoFirst,
            GradingHysteresis {
                degrade_above: 0.4,
                upgrade_below: 0.9,
                upgrade_patience: 1,
            },
        );
    }
}

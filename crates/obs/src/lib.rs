//! # hermes-obs
//!
//! The observability layer for the Hermes on-demand service: sim-time
//! structured tracing, lifecycle spans, a unified metrics registry and a
//! per-node flight recorder, threaded through the simulator engine and
//! every service actor.
//!
//! * [`event`] — fixed-shape, allocation-free trace records with severity
//!   and a fixed label set, merged deterministically by `(sim-time, seq)`;
//! * [`span`] — parent/child lifecycle intervals (admission → placement →
//!   prefill → playout → recovery → degradation → teardown);
//! * [`registry`] — counters, gauges and fixed-bucket histograms behind one
//!   deterministic snapshot surface;
//! * [`export`] — JSONL event dump, Chrome trace-event (Perfetto-loadable)
//!   span export, per-session timeline text and flight reports;
//! * [`flight`] — bounded per-node rings of recent events, dumped on
//!   anomalies so failures ship their own context;
//! * [`invariants`] — global invariant checkers (epoch monotonicity,
//!   session lifecycle, breaker legality, conservation, bounded recovery)
//!   run over a finished capture by the chaos harness;
//! * [`stats`] — accumulators, histograms, rate meters and sample-set
//!   helpers (migrated from `hermes-simnet::metrics`).
//!
//! ## Cost model
//!
//! Recording is gated twice: the `trace` cargo feature (compile-time; off
//! means every record call is a statically-false branch the optimizer
//! deletes) and a runtime `enabled` flag (one load + branch when compiled
//! in). Hot-path records are `Copy` — `&'static str` names, fixed label
//! struct, no formatting — so an enabled trace costs a ring push and, for
//! `Info`-and-above, one `Vec` push. The `exp_obs` benchmark measures both
//! sides of the toggle.

#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod flight;
pub mod invariants;
pub mod registry;
pub mod span;
pub mod stats;

pub use event::{Event, Labels, Severity};
pub use export::{chrome_trace, events_jsonl, flight_report, session_timeline};
pub use flight::{FlightDump, FlightRecorder};
pub use invariants::{check_run, InvariantConfig, Violation};
pub use registry::{MetricKey, MetricsRegistry};
pub use span::{Span, SpanId, SpanStore};
pub use stats::{max_dur_by, mean_by, percentile, Accumulator, DurationHistogram, RateMeter};

use hermes_core::MediaTime;

/// True when the `trace` cargo feature is compiled in. With it off, every
/// recording method starts with a statically-false check and compiles to a
/// no-op.
pub const TRACE_COMPILED: bool = cfg!(feature = "trace");

/// The observability capture for one run: the main event log, the span
/// store, the metrics registry and the flight recorder, plus the global
/// `seq` counter that makes same-tick emissions from different nodes merge
/// in one deterministic order.
#[derive(Debug, Clone)]
pub struct Obs {
    enabled: bool,
    seq: u64,
    events: Vec<Event>,
    /// Lifecycle spans.
    pub spans: SpanStore,
    /// The unified metrics registry (always live — publishing happens at
    /// end of run and is not gated by the trace toggle).
    pub registry: MetricsRegistry,
    /// Per-node recent-event rings and anomaly dumps.
    pub flight: FlightRecorder,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

impl Obs {
    /// A fresh capture with tracing enabled (when compiled in).
    pub fn new() -> Self {
        Obs {
            enabled: true,
            seq: 0,
            events: Vec::new(),
            spans: SpanStore::default(),
            registry: MetricsRegistry::new(),
            flight: FlightRecorder::default(),
        }
    }

    /// True when recording is active (feature compiled in *and* runtime
    /// flag set).
    #[inline]
    pub fn on(&self) -> bool {
        TRACE_COMPILED && self.enabled
    }

    /// Flip the runtime toggle (a disabled capture records nothing but
    /// keeps its registry usable).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Record an event with a zero payload.
    #[inline]
    pub fn emit(
        &mut self,
        at: MediaTime,
        node: u64,
        severity: Severity,
        name: &'static str,
        labels: Labels,
    ) {
        self.emit_val(at, node, severity, name, labels, 0);
    }

    /// Record an event. `Debug` severity goes to the node's flight ring
    /// only; `Info` and above also append to the main log.
    #[inline]
    pub fn emit_val(
        &mut self,
        at: MediaTime,
        node: u64,
        severity: Severity,
        name: &'static str,
        labels: Labels,
        value: i64,
    ) {
        if !self.on() {
            return;
        }
        let ev = Event {
            at,
            seq: self.seq,
            node,
            severity,
            name,
            labels,
            value,
        };
        self.seq += 1;
        self.flight.record(ev);
        if severity >= Severity::Info {
            self.events.push(ev);
        }
    }

    /// Open a span (returns [`SpanId::NONE`] when recording is off; the
    /// null handle is accepted everywhere downstream).
    #[inline]
    pub fn span_start(
        &mut self,
        at: MediaTime,
        node: u64,
        name: &'static str,
        labels: Labels,
        parent: SpanId,
    ) -> SpanId {
        if !self.on() {
            return SpanId::NONE;
        }
        self.spans.start(at, node, name, labels, parent)
    }

    /// Close a span (no-op for the null handle).
    #[inline]
    pub fn span_end(&mut self, id: SpanId, at: MediaTime) {
        if !self.on() {
            return;
        }
        self.spans.end(id, at);
    }

    /// Get-or-create the root span of `session` — the shared parent under
    /// which client- and server-side actors hang their lifecycle spans.
    #[inline]
    pub fn session_span(&mut self, session: u64, node: u64, at: MediaTime) -> SpanId {
        if !self.on() {
            return SpanId::NONE;
        }
        self.spans.session_root(session, node, at)
    }

    /// Dump `node`'s flight ring on an anomaly.
    #[inline]
    pub fn dump_flight(&mut self, at: MediaTime, node: u64, reason: &'static str, labels: Labels) {
        if !self.on() {
            return;
        }
        self.flight.dump(at, node, reason, labels);
    }

    /// The main event log (`Info` and above), in `(at, seq)` order by
    /// construction.
    pub fn events(&self) -> &[Event] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(feature = "trace")]
    fn same_tick_emissions_merge_deterministically() {
        // Two nodes emit at the same sim-time tick: the global seq counter
        // fixes the merge order, and two identical runs agree byte-for-byte.
        let run = || {
            let mut obs = Obs::new();
            let t = MediaTime::from_millis(100);
            obs.emit(t, 2, Severity::Info, "node_two_first", Labels::NONE);
            obs.emit(t, 1, Severity::Info, "node_one_second", Labels::NONE);
            obs
        };
        let a = run();
        assert_eq!(a.events()[0].name, "node_two_first");
        assert_eq!(a.events()[1].name, "node_one_second");
        assert!(a.events()[0].sort_key() < a.events()[1].sort_key());
        assert_eq!(events_jsonl(&run()), events_jsonl(&a));
    }

    #[test]
    fn runtime_toggle_silences_everything() {
        let mut obs = Obs::new();
        obs.set_enabled(false);
        obs.emit(MediaTime::ZERO, 1, Severity::Error, "boom", Labels::NONE);
        let id = obs.span_start(MediaTime::ZERO, 1, "s", Labels::NONE, SpanId::NONE);
        obs.dump_flight(MediaTime::ZERO, 1, "anomaly", Labels::NONE);
        assert!(id.is_none());
        assert!(obs.events().is_empty());
        assert!(obs.spans.is_empty());
        assert!(obs.flight.dumps().is_empty());
        // The registry stays usable regardless of the toggle.
        obs.registry.counter_add("c", Labels::NONE, 1);
        assert_eq!(obs.registry.counter("c", Labels::NONE), 1);
    }

    #[test]
    fn debug_events_stay_out_of_the_main_log() {
        let mut obs = Obs::new();
        obs.emit(MediaTime::ZERO, 1, Severity::Debug, "tick", Labels::NONE);
        obs.emit(
            MediaTime::ZERO,
            1,
            Severity::Info,
            "lifecycle",
            Labels::NONE,
        );
        assert_eq!(obs.events().len(), if TRACE_COMPILED { 1 } else { 0 });
        if TRACE_COMPILED {
            assert_eq!(obs.events()[0].name, "lifecycle");
            assert_eq!(obs.flight.ring_len(1), 2);
        }
    }
}

#![allow(clippy::field_reassign_with_default)]
//! EXP-MIGRATE — claim (§5): following a link to a document on another
//! server suspends the current connection; "the suspended connection remains
//! active for a period of time, in case the user requests to view a previous
//! selected document. When this interval is passed the connection closes and
//! the attached client is informed about the event."
//!
//! Sweep the user's revisit delay against the server's grace period and
//! report whether the suspended session survived.

use hermes_bench::{ExpOpts, Table};
use hermes_core::{LinkTarget, MediaDuration, MediaTime, ServerId};
use hermes_service::{install_course, ClientConfig, LessonShape, ServerConfig, WorldBuilder};
use hermes_simnet::{LinkSpec, SimRng};

/// Returns (session_alive_at_revisit, client_was_notified_of_expiry).
fn run(revisit_after_s: i64, grace_s: i64, seed: u64) -> (bool, bool) {
    let mut b = WorldBuilder::new(seed);
    let mut cfg1 = ServerConfig::default();
    cfg1.suspend_grace = MediaDuration::from_secs(grace_s);
    let s1 = b.add_server(ServerId::new(0), LinkSpec::lan(10_000_000), cfg1);
    let s2 = b.add_server(
        ServerId::new(1),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
    );
    let cli = b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default());
    let mut sim = b.build(seed);
    let mut rng = SimRng::seed_from_u64(seed.wrapping_add(1));
    let shape = LessonShape {
        images: 0,
        image_secs: 0,
        narrated_clip_secs: Some(4),
        closing_audio_secs: None,
    };
    let home = install_course(
        sim.app_mut().server_mut(s1),
        "Home",
        &["a"],
        10,
        1,
        shape,
        &mut rng,
    );
    let away = install_course(
        sim.app_mut().server_mut(s2),
        "Away",
        &["b"],
        50,
        1,
        shape,
        &mut rng,
    );

    sim.with_api(|w, api| {
        w.client_mut(cli).connect(api, s1, Some(home[0]));
    });
    sim.run_until(MediaTime::from_secs(2));
    // Follow the remote link at t=2 s: the s1 session suspends.
    sim.with_api(|w, api| {
        w.client_mut(cli)
            .follow_link(api, LinkTarget::Remote(ServerId::new(1), away[0]));
    });
    let revisit_at = MediaTime::from_secs(2 + revisit_after_s);
    sim.run_until(revisit_at);
    let alive = !sim.app().server(s1).sessions.is_empty();
    if alive {
        // Revisit: resume the suspended connection.
        sim.with_api(|w, api| {
            if let Some((old_server, old_session)) = w.client_mut(cli).suspended.take() {
                api.send_reliable(
                    cli,
                    old_server,
                    hermes_service::ServiceMsg::ResumeSuspended {
                        session: old_session,
                    },
                );
            }
        });
    }
    sim.run_until(revisit_at + MediaDuration::from_secs(grace_s + 5));
    let notified = sim
        .app()
        .client(cli)
        .log
        .iter()
        .any(|(_, l)| l.contains("expired"));
    (alive, notified)
}

fn main() {
    let opts = ExpOpts::parse();
    let mut out = opts.sink();
    let seed = opts.seed(13);
    let mut t = Table::new(vec![
        "grace (s)",
        "revisit after (s)",
        "session alive at revisit",
        "expiry notice",
        "outcome",
    ]);
    for &(grace, revisit) in &[(10i64, 5i64), (10, 20), (30, 20), (30, 45), (5, 4), (5, 30)] {
        let (alive, notified) = run(revisit, grace, seed);
        let expect_alive = revisit < grace;
        assert_eq!(
            alive, expect_alive,
            "grace {grace}s revisit {revisit}s: alive={alive}"
        );
        if !expect_alive {
            assert!(notified, "client must be informed of the expiry");
        }
        t.row(vec![
            grace.to_string(),
            revisit.to_string(),
            if alive { "yes" } else { "no (closed)" }.to_string(),
            if notified { "received" } else { "-" }.to_string(),
            if alive {
                "resumed on old server".to_string()
            } else {
                "reconnect required".to_string()
            },
        ]);
    }
    out.table(
        "EXP-MIGRATE — suspended-connection grace vs revisit delay",
        &t,
    );
    out.line(
        "expected shape: a revisit inside the grace window finds the session alive\n\
         and resumable; past the window the server has torn it down and the client\n\
         was informed — exactly the §5 suspend semantics.",
    );
}

#![allow(clippy::field_reassign_with_default)]
//! EXP-GRADE — claim: the long-term recovery (media quality grading driven
//! by client feedback) lets a presentation survive sustained congestion that
//! the nominal rates cannot fit, degrading video before audio and upgrading
//! when the network recovers.
//!
//! A 30 s A/V clip crosses a link that drops to ~45% effective capacity for
//! 12 s mid-stream. With grading ON vs OFF, trace the video quality level
//! and delivered rate over time, and compare playout quality.

use hermes_bench::harness::standard_lesson;
use hermes_bench::{ExpOpts, StreamingParams, Table};
use hermes_client::BufferConfig;
use hermes_client::PlayoutConfig;
use hermes_core::{GradingOrder, MediaKind, MediaTime, ServerId};
use hermes_service::{install_course, ClientConfig, ServerConfig, WorldBuilder};
use hermes_simnet::{CongestionEpoch, CongestionProfile, LinkSpec, SimRng};

struct TraceRow {
    t: i64,
    audio_level: u8,
    video_level: u8,
    video_kbps: u64,
    stopped: bool,
}

fn run_traced(
    grading: bool,
    order: GradingOrder,
    seed: u64,
) -> (Vec<TraceRow>, hermes_bench::StreamingMetrics) {
    // Build the same world the harness would, but sample levels per second.
    let p = StreamingParams {
        access_bps: 4_000_000,
        congestion: CongestionProfile::new(vec![CongestionEpoch {
            start: MediaTime::from_secs(10),
            end: MediaTime::from_secs(22),
            load: 0.55,
            extra_loss: 0.02,
        }]),
        grading,
        grading_order: order,
        clip_secs: 30,
        horizon: MediaTime::from_secs(55),
        seed,
        ..Default::default()
    };
    // Inline a traced variant of run_streaming_session.
    let mut b = WorldBuilder::new(p.seed);
    let mut server_cfg = ServerConfig::default();
    if !grading {
        server_cfg.hysteresis = hermes_core::GradingHysteresis {
            degrade_above: 1e18,
            upgrade_below: 0.5,
            upgrade_patience: 3,
        };
    }
    server_cfg.grading_order = order;
    let server = b.add_server(ServerId::new(0), LinkSpec::lan(100_000_000), server_cfg);
    let mut access = LinkSpec::lan(p.access_bps);
    access.queue_capacity_bytes = p.queue_bytes;
    access.congestion = p.congestion.clone();
    let mut ccfg = ClientConfig::default();
    ccfg.class = p.class;
    ccfg.form.class = p.class;
    ccfg.buffer = BufferConfig::with_window(p.time_window);
    ccfg.playout = PlayoutConfig::default();
    let client = b.add_client(access, ccfg);
    let mut sim = b.build(p.seed);
    let mut rng = SimRng::seed_from_u64(p.seed.wrapping_mul(0x9E37_79B9));
    let lessons = install_course(
        sim.app_mut().server_mut(server),
        "Workload",
        &["experiment"],
        1,
        1,
        standard_lesson(p.clip_secs),
        &mut rng,
    );
    sim.with_api(|w, api| {
        w.client_mut(client).connect(api, server, Some(lessons[0]));
    });
    let mut trace = Vec::new();
    for t in 1..=40 {
        sim.run_until(MediaTime::from_secs(t));
        let srv = sim.app().server(server);
        if let Some((_, sess)) = srv.sessions.iter().next() {
            let mut row = TraceRow {
                t,
                audio_level: 0,
                video_level: 0,
                video_kbps: 0,
                stopped: false,
            };
            for (c, tx) in &sess.streams {
                match tx.plan.kind {
                    MediaKind::Audio => {
                        row.audio_level = sess.qos.level_of(*c).map(|l| l.0).unwrap_or(0)
                    }
                    MediaKind::Video => {
                        row.video_level = sess.qos.level_of(*c).map(|l| l.0).unwrap_or(0);
                        if let Some(ms) = sess.qos.stream(*c) {
                            row.video_kbps = ms.converter.current_bandwidth_bps() / 1000;
                            row.stopped = ms.converter.stopped;
                        }
                    }
                    _ => {}
                }
            }
            trace.push(row);
        }
    }
    sim.run_until(p.horizon);
    // Extract final metrics via the shared harness shape.
    let c = sim.app().client(client);
    let mut m = hermes_bench::StreamingMetrics::default();
    m.completed = !c.completed.is_empty();
    if let Some((_, startup, skew)) = c.completed.first() {
        m.startup = *startup;
        m.max_skew = *skew;
    }
    if let Some(pres) = &c.presentation {
        let stats = pres.engine.total_stats();
        m.frames_played = stats.frames_played;
        m.duplicates = stats.duplicates_played;
        m.glitches = stats.glitches;
        m.dropped = stats.frames_dropped;
        m.max_skew = m.max_skew.max(pres.engine.max_skew_observed);
    }
    let srv = sim.app().server(server);
    for sess in srv.sessions.values() {
        m.degrades += sess.qos.degrades_issued;
        m.upgrades += sess.qos.upgrades_issued;
        m.stops += sess.qos.stops_issued;
    }
    let net = sim.net().total_stats();
    m.net_dropped = net.packets_lost + net.packets_dropped_queue;
    (trace, m)
}

fn main() {
    let opts = ExpOpts::parse();
    let mut out = opts.sink();
    let seed = opts.seed(77);
    out.line(
        "workload: 30 s A/V clip on 4 Mbps; congestion epoch t=10..22 s at 55% load\n\
         (effective capacity 1.8 Mbps < the 2.25 Mbps nominal aggregate)",
    );
    let (trace, with) = run_traced(true, GradingOrder::VideoFirst, seed);
    let mut t = Table::new(vec![
        "t (s)",
        "audio level",
        "video level",
        "video kbps",
        "note",
    ]);
    let mut last = (0u8, 0u8);
    for r in &trace {
        let changed = (r.audio_level, r.video_level) != last;
        let epoch = (10..22).contains(&r.t);
        let note = match (epoch, changed, r.stopped) {
            (_, _, true) => "video stopped (floor reached)",
            (true, true, _) => "degrading (video first)",
            (false, true, _) => "upgrading (network recovered)",
            (true, false, _) => "congestion epoch",
            _ => "",
        };
        if changed || r.t % 5 == 0 {
            t.row(vec![
                r.t.to_string(),
                r.audio_level.to_string(),
                r.video_level.to_string(),
                r.video_kbps.to_string(),
                note.to_string(),
            ]);
        }
        last = (r.audio_level, r.video_level);
    }
    out.table("EXP-GRADE — quality-level trace with grading ON", &t);

    let (_, without) = run_traced(false, GradingOrder::VideoFirst, seed);
    let mut t = Table::new(vec![
        "grading",
        "degrades",
        "upgrades",
        "stops",
        "max skew (ms)",
        "disruptions",
        "net drops",
        "frames",
    ]);
    for (label, m) in [("on", &with), ("off", &without)] {
        t.row(vec![
            label.to_string(),
            m.degrades.to_string(),
            m.upgrades.to_string(),
            m.stops.to_string(),
            format!("{:.0}", m.max_skew.as_millis()),
            (m.duplicates + m.glitches + m.dropped).to_string(),
            m.net_dropped.to_string(),
            m.frames_played.to_string(),
        ]);
    }
    out.table("EXP-GRADE — grading on vs off over the same epoch", &t);
    out.line(
        "expected shape: with grading ON, video degrades (audio untouched or later),\n\
         the flow fits the congested link, and quality climbs back after t=22 s;\n\
         OFF, the nominal-rate flow overloads the link for the whole epoch —\n\
         more network drops and more presentation disruptions.",
    );
    assert!(with.degrades > 0 && with.upgrades > 0);
    assert_eq!(without.degrades, 0);
    assert!(without.net_dropped > with.net_dropped);
}

//! Hermetic stub of the `criterion` benchmark harness. It runs each bench
//! body a few times, prints a rough per-iteration time, and never fails —
//! enough to keep `cargo bench` compiling and executing offline without the
//! real statistics engine.

use std::time::{Duration, Instant};

/// Declared throughput of a benchmark (printed, not analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch sizing for `iter_batched` (ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Opaque identity function preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            throughput: None,
        }
    }

    /// Register a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, None, &mut f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the sample count (ignored by the stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the measurement time (ignored by the stub).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Register one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.throughput, &mut f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one(id: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iterations > 0 {
        b.elapsed / b.iterations
    } else {
        Duration::ZERO
    };
    match throughput {
        Some(Throughput::Bytes(n)) => {
            println!("  {id}: {per_iter:?}/iter ({n} B/iter)");
        }
        Some(Throughput::Elements(n)) => {
            println!("  {id}: {per_iter:?}/iter ({n} elem/iter)");
        }
        None => println!("  {id}: {per_iter:?}/iter"),
    }
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    iterations: u32,
    elapsed: Duration,
}

/// Iteration budget: few enough that heavyweight session benches stay fast,
/// enough that cheap ones get a stable-ish number.
const ITERS: u32 = 3;

impl Bencher {
    /// Time a closure.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..ITERS {
            let t = Instant::now();
            black_box(f());
            self.elapsed += t.elapsed();
            self.iterations += 1;
        }
    }

    /// Time a closure with an untimed per-iteration setup.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..ITERS {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.elapsed += t.elapsed();
            self.iterations += 1;
        }
    }
}

/// Expand to a function running each bench target with a fresh `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Expand to a `main` running the listed groups (CLI args are ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Hermetic, dependency-free replacement for the subset of the `rand` crate
//! this workspace uses: `rngs::SmallRng` (xoshiro256++ seeded via SplitMix64,
//! the same generator real `rand 0.8` uses on 64-bit targets), the `Rng` /
//! `SeedableRng` traits, `gen::<T>()` for primitives and `gen_range` over
//! half-open integer/float ranges.
//!
//! The build environment has no registry access, so the workspace vendors the
//! exact API surface it needs. Determinism is the only contract callers rely
//! on: the same seed yields the same stream on every platform.

use std::ops::Range;

/// Minimal stand-in for `rand_core::RngCore`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution in real rand).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable into a `T` (the `SampleRange` shape from real rand).
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % width;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % width;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing random-value API.
pub trait Rng: RngCore {
    /// Sample a value of a primitive type over its whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
    /// Sample uniformly from a range. Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (only `seed_from_u64` is used in-tree).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// RNG namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; the algorithm
    /// behind real `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut st);
            }
            // All-zero state would be degenerate; SplitMix64 cannot emit four
            // zero words from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_unit_interval_mean() {
        let mut r = SmallRng::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_hit_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }
}

//! Hermetic stub of the `serde` facade. The workspace only ever *derives*
//! `Serialize`/`Deserialize` (no runtime serialization flows through serde),
//! so the stub provides the two trait names and re-exports no-op derive
//! macros under the same names, exactly as the real facade does.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

//! Attribute-value micro-parsers: times, sources, placements, link kinds.

use hermes_core::MediaDuration;
use hermes_core::{DocumentId, LinkKind, MediaSource, MediaTime, Region, ServerId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A value-level parse error with the offending input.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValueError {
    /// What kind of value was expected.
    pub expected: &'static str,
    /// The input that failed to parse.
    pub input: String,
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad {} value: '{}'", self.expected, self.input)
    }
}

impl std::error::Error for ValueError {}

fn err(expected: &'static str, input: &str) -> ValueError {
    ValueError {
        expected,
        input: input.to_string(),
    }
}

/// Parse a duration value: `"12.5s"`, `"300ms"`, `"2500us"`, or a bare
/// number meaning seconds (`"12"`, `"12.5"`). Negative values are accepted
/// here; callers reject them where the grammar requires non-negative times.
pub fn parse_duration(s: &str) -> Result<MediaDuration, ValueError> {
    let s = s.trim();
    let (num, mult_us) = if let Some(n) = s.strip_suffix("ms") {
        (n, 1_000.0)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1.0)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1_000_000.0)
    } else {
        (s, 1_000_000.0)
    };
    let v: f64 = num.trim().parse().map_err(|_| err("time", s))?;
    if !v.is_finite() {
        return Err(err("time", s));
    }
    Ok(MediaDuration::from_micros((v * mult_us).round() as i64))
}

/// Parse a time instant (same syntax as durations).
pub fn parse_time(s: &str) -> Result<MediaTime, ValueError> {
    parse_duration(s).map(|d| MediaTime::ZERO + d)
}

/// Parse a `SOURCE` value: `"srvN:object"` selects a server explicitly,
/// a bare object key (`"lessons/intro.mpg"`) refers to the document's home
/// server (resolved later).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SourceRef {
    /// Explicit server + object.
    Absolute(MediaSource),
    /// Object on the home server.
    Relative(String),
}

impl SourceRef {
    /// Resolve against a home server.
    pub fn resolve(&self, home: ServerId) -> MediaSource {
        match self {
            SourceRef::Absolute(m) => m.clone(),
            SourceRef::Relative(obj) => MediaSource::new(home, obj.clone()),
        }
    }
}

/// Parse a `SOURCE` value.
pub fn parse_source(s: &str) -> Result<SourceRef, ValueError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(err("source", s));
    }
    if let Some((srv, obj)) = s.split_once(':') {
        if let Some(num) = srv.strip_prefix("srv") {
            let id: u64 = num.parse().map_err(|_| err("source", s))?;
            if obj.is_empty() {
                return Err(err("source", s));
            }
            return Ok(SourceRef::Absolute(MediaSource::new(
                ServerId::new(id),
                obj,
            )));
        }
    }
    Ok(SourceRef::Relative(s.to_string()))
}

/// Parse a `WHERE` value: `"x,y"` pixel coordinates of the top-left corner.
pub fn parse_where(s: &str) -> Result<(i32, i32), ValueError> {
    let (x, y) = s.split_once(',').ok_or_else(|| err("where", s))?;
    let x: i32 = x.trim().parse().map_err(|_| err("where", s))?;
    let y: i32 = y.trim().parse().map_err(|_| err("where", s))?;
    Ok((x, y))
}

/// Combine `WHERE` + `WIDTH` + `HEIGHT` into a region. Missing dimensions
/// default to zero (the renderer sizes to content).
pub fn region_from_parts(
    at: Option<(i32, i32)>,
    width: Option<u32>,
    height: Option<u32>,
) -> Option<Region> {
    if at.is_none() && width.is_none() && height.is_none() {
        return None;
    }
    let (x, y) = at.unwrap_or((0, 0));
    Some(Region::new(x, y, width.unwrap_or(0), height.unwrap_or(0)))
}

/// Parse a pixel dimension (`WIDTH`/`HEIGHT`).
pub fn parse_dimension(s: &str) -> Result<u32, ValueError> {
    s.trim().parse().map_err(|_| err("dimension", s))
}

/// Parse a numeric id value (`ID`).
pub fn parse_id(s: &str) -> Result<u64, ValueError> {
    s.trim().parse().map_err(|_| err("id", s))
}

/// Parse a link `KIND` value: `SEQ`(UENTIAL) or `EXP`(LORATIONAL).
pub fn parse_link_kind(s: &str) -> Result<LinkKind, ValueError> {
    match s.trim().to_ascii_uppercase().as_str() {
        "SEQ" | "SEQUENTIAL" => Ok(LinkKind::Sequential),
        "EXP" | "EXPLORATIONAL" => Ok(LinkKind::Explorational),
        _ => Err(err("link kind", s)),
    }
}

/// Parse a `TO` value: `docN` or a bare number.
pub fn parse_doc_target(s: &str) -> Result<DocumentId, ValueError> {
    let s = s.trim();
    let num = s.strip_prefix("doc").unwrap_or(s);
    let id: u64 = num.parse().map_err(|_| err("document target", s))?;
    Ok(DocumentId::new(id))
}

/// Parse a `HOST` value: `srvN` or a bare number.
pub fn parse_host(s: &str) -> Result<ServerId, ValueError> {
    let s = s.trim();
    let num = s.strip_prefix("srv").unwrap_or(s);
    let id: u64 = num.parse().map_err(|_| err("host", s))?;
    Ok(ServerId::new(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_in_all_units() {
        assert_eq!(parse_duration("2s").unwrap(), MediaDuration::from_secs(2));
        assert_eq!(
            parse_duration("1500ms").unwrap(),
            MediaDuration::from_millis(1500)
        );
        assert_eq!(
            parse_duration("250us").unwrap(),
            MediaDuration::from_micros(250)
        );
        assert_eq!(parse_duration("3").unwrap(), MediaDuration::from_secs(3));
        assert_eq!(
            parse_duration("2.5s").unwrap(),
            MediaDuration::from_millis(2500)
        );
        assert_eq!(
            parse_duration(" 0.04 s ").unwrap(),
            MediaDuration::from_millis(40)
        );
    }

    #[test]
    fn bad_durations_rejected() {
        assert!(parse_duration("fast").is_err());
        assert!(parse_duration("").is_err());
        assert!(parse_duration("1.2.3s").is_err());
        assert!(parse_duration("infs").is_err());
    }

    #[test]
    fn sources_absolute_and_relative() {
        assert_eq!(
            parse_source("srv2:lessons/intro.mpg").unwrap(),
            SourceRef::Absolute(MediaSource::new(ServerId::new(2), "lessons/intro.mpg"))
        );
        assert_eq!(
            parse_source("audio/a1.pcm").unwrap(),
            SourceRef::Relative("audio/a1.pcm".into())
        );
        // A colon path without the srv prefix is a relative object key.
        assert_eq!(
            parse_source("c:path").unwrap(),
            SourceRef::Relative("c:path".into())
        );
        assert!(parse_source("").is_err());
        assert!(parse_source("srv2:").is_err());
        assert!(parse_source("srvX:obj").is_err());
    }

    #[test]
    fn source_resolution() {
        let home = ServerId::new(7);
        assert_eq!(
            parse_source("a/b").unwrap().resolve(home),
            MediaSource::new(home, "a/b")
        );
        assert_eq!(
            parse_source("srv1:a/b").unwrap().resolve(home),
            MediaSource::new(ServerId::new(1), "a/b")
        );
    }

    #[test]
    fn where_and_region() {
        assert_eq!(parse_where("10,20").unwrap(), (10, 20));
        assert_eq!(parse_where(" -5 , 7 ").unwrap(), (-5, 7));
        assert!(parse_where("10").is_err());
        assert!(parse_where("a,b").is_err());
        let r = region_from_parts(Some((1, 2)), Some(30), Some(40)).unwrap();
        assert_eq!(r, Region::new(1, 2, 30, 40));
        assert_eq!(region_from_parts(None, None, None), None);
        assert_eq!(
            region_from_parts(None, Some(10), None).unwrap(),
            Region::new(0, 0, 10, 0)
        );
    }

    #[test]
    fn link_values() {
        assert_eq!(parse_link_kind("SEQ").unwrap(), LinkKind::Sequential);
        assert_eq!(
            parse_link_kind("explorational").unwrap(),
            LinkKind::Explorational
        );
        assert!(parse_link_kind("sideways").is_err());
        assert_eq!(parse_doc_target("doc12").unwrap(), DocumentId::new(12));
        assert_eq!(parse_doc_target("12").unwrap(), DocumentId::new(12));
        assert_eq!(parse_host("srv3").unwrap(), ServerId::new(3));
        assert!(parse_doc_target("docX").is_err());
    }

    #[test]
    fn ids_and_dimensions() {
        assert_eq!(parse_id("42").unwrap(), 42);
        assert!(parse_id("-1").is_err());
        assert_eq!(parse_dimension("640").unwrap(), 640);
        assert!(parse_dimension("wide").is_err());
    }
}

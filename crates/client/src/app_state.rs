//! The application state machine of paper Fig. 4 (§5, "Functional
//! description"): connection, authentication, subscription, topic browsing,
//! document viewing with pause/resume, link following with server migration
//! (suspend + reconnect), and disconnection.

use hermes_core::{ServiceError, ServiceResult};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The states of the service's application protocol.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum AppState {
    /// Not connected to any server.
    #[default]
    Disconnected,
    /// Connection requested; authentication primitive running.
    Authenticating,
    /// Unknown user: filling in the subscription form.
    Subscribing,
    /// Connected; the list of available topics/lessons is on screen.
    Browsing,
    /// A document was requested; waiting for its presentation scenario.
    Requesting,
    /// A document is being presented.
    Viewing,
    /// Presentation paused by the user.
    Paused,
    /// Following a link to a document on another server: the old connection
    /// is suspended, a new connection is being established.
    Migrating,
}

/// Events (user actions and service responses) driving the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AppEvent {
    /// User asks to connect to a server.
    Connect,
    /// Authentication succeeded (known subscriber).
    AuthOk,
    /// Authentication found no subscription: the form is presented.
    AuthUnknownUser,
    /// The subscription form was accepted.
    SubscriptionAccepted,
    /// Admission was rejected (network load / pricing).
    AdmissionRejected,
    /// User requests a document/lesson.
    RequestDocument,
    /// The presentation scenario arrived; playout begins (after prefill).
    ScenarioReceived,
    /// The requested document does not exist.
    RequestFailed,
    /// The presentation ran to completion.
    PresentationEnded,
    /// User pauses the presentation.
    Pause,
    /// User resumes a paused presentation.
    Resume,
    /// User reloads the current document.
    Reload,
    /// User follows a link to a document on the *same* server.
    FollowLocalLink,
    /// User follows a link to a document on *another* server: suspends the
    /// current connection.
    FollowRemoteLink,
    /// The new server accepted the migrated connection.
    MigrationComplete,
    /// The new server rejected the migration; fall back to the suspended
    /// connection's topic list.
    MigrationFailed,
    /// User disconnects from the service.
    Disconnect,
}

impl fmt::Display for AppState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl fmt::Display for AppEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl AppState {
    /// All states (for coverage matrices).
    pub const ALL: [AppState; 8] = [
        AppState::Disconnected,
        AppState::Authenticating,
        AppState::Subscribing,
        AppState::Browsing,
        AppState::Requesting,
        AppState::Viewing,
        AppState::Paused,
        AppState::Migrating,
    ];
}

impl AppEvent {
    /// All events (for coverage matrices).
    pub const ALL: [AppEvent; 17] = [
        AppEvent::Connect,
        AppEvent::AuthOk,
        AppEvent::AuthUnknownUser,
        AppEvent::SubscriptionAccepted,
        AppEvent::AdmissionRejected,
        AppEvent::RequestDocument,
        AppEvent::ScenarioReceived,
        AppEvent::RequestFailed,
        AppEvent::PresentationEnded,
        AppEvent::Pause,
        AppEvent::Resume,
        AppEvent::Reload,
        AppEvent::FollowLocalLink,
        AppEvent::FollowRemoteLink,
        AppEvent::MigrationComplete,
        AppEvent::MigrationFailed,
        AppEvent::Disconnect,
    ];
}

/// The legal transition function of Fig. 4. Returns the successor state, or
/// `None` when the event is not legal in the state.
pub fn transition(state: AppState, event: AppEvent) -> Option<AppState> {
    use AppEvent::*;
    use AppState::*;
    Some(match (state, event) {
        (Disconnected, Connect) => Authenticating,
        (Authenticating, AuthOk) => Browsing,
        (Authenticating, AuthUnknownUser) => Subscribing,
        (Authenticating, AdmissionRejected) => Disconnected,
        (Subscribing, SubscriptionAccepted) => Browsing,
        (Subscribing, Disconnect) => Disconnected,
        (Browsing, RequestDocument) => Requesting,
        (Browsing, FollowLocalLink) => Requesting,
        (Browsing, FollowRemoteLink) => Migrating,
        (Browsing, Disconnect) => Disconnected,
        (Requesting, ScenarioReceived) => Viewing,
        (Requesting, RequestFailed) => Browsing,
        (Requesting, Disconnect) => Disconnected,
        (Viewing, Pause) => Paused,
        (Viewing, PresentationEnded) => Browsing,
        (Viewing, Reload) => Requesting,
        (Viewing, FollowLocalLink) => Requesting,
        (Viewing, FollowRemoteLink) => Migrating,
        (Viewing, Disconnect) => Disconnected,
        (Paused, Resume) => Viewing,
        (Paused, Reload) => Requesting,
        (Paused, FollowLocalLink) => Requesting,
        (Paused, FollowRemoteLink) => Migrating,
        (Paused, Disconnect) => Disconnected,
        (Migrating, MigrationComplete) => Requesting,
        (Migrating, MigrationFailed) => Browsing,
        (Migrating, Disconnect) => Disconnected,
        _ => return None,
    })
}

/// A session-side state machine instance with a transition log.
#[derive(Debug, Clone, Default)]
pub struct AppStateMachine {
    state: AppState,
    /// Every transition taken: (from, event, to).
    pub log: Vec<(AppState, AppEvent, AppState)>,
}

impl AppStateMachine {
    /// A machine starting Disconnected.
    pub fn new() -> Self {
        Self::default()
    }
    /// Current state.
    pub fn state(&self) -> AppState {
        self.state
    }
    /// Apply an event; errors with `InvalidStateTransition` if illegal.
    pub fn apply(&mut self, event: AppEvent) -> ServiceResult<AppState> {
        match transition(self.state, event) {
            Some(next) => {
                self.log.push((self.state, event, next));
                self.state = next;
                Ok(next)
            }
            None => Err(ServiceError::InvalidStateTransition {
                state: self.state.to_string(),
                operation: event.to_string(),
            }),
        }
    }
    /// The set of distinct transitions exercised so far.
    pub fn covered(&self) -> BTreeSet<(AppState, AppEvent)> {
        self.log.iter().map(|(s, e, _)| (*s, *e)).collect()
    }
}

/// Enumerate every legal transition (for the FIG4 coverage experiment).
pub fn all_legal_transitions() -> Vec<(AppState, AppEvent, AppState)> {
    let mut v = Vec::new();
    for s in AppState::ALL {
        for e in AppEvent::ALL {
            if let Some(t) = transition(s, e) {
                v.push((s, e, t));
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_session() {
        let mut m = AppStateMachine::new();
        for (e, expect) in [
            (AppEvent::Connect, AppState::Authenticating),
            (AppEvent::AuthUnknownUser, AppState::Subscribing),
            (AppEvent::SubscriptionAccepted, AppState::Browsing),
            (AppEvent::RequestDocument, AppState::Requesting),
            (AppEvent::ScenarioReceived, AppState::Viewing),
            (AppEvent::Pause, AppState::Paused),
            (AppEvent::Resume, AppState::Viewing),
            (AppEvent::FollowLocalLink, AppState::Requesting),
            (AppEvent::ScenarioReceived, AppState::Viewing),
            (AppEvent::FollowRemoteLink, AppState::Migrating),
            (AppEvent::MigrationComplete, AppState::Requesting),
            (AppEvent::ScenarioReceived, AppState::Viewing),
            (AppEvent::PresentationEnded, AppState::Browsing),
            (AppEvent::Disconnect, AppState::Disconnected),
        ] {
            assert_eq!(m.apply(e).unwrap(), expect, "after {e}");
        }
        assert_eq!(m.log.len(), 14);
    }

    #[test]
    fn illegal_transitions_rejected() {
        let mut m = AppStateMachine::new();
        // Can't pause while disconnected.
        let e = m.apply(AppEvent::Pause).unwrap_err();
        assert!(matches!(e, ServiceError::InvalidStateTransition { .. }));
        assert_eq!(m.state(), AppState::Disconnected);
        // Can't connect twice.
        m.apply(AppEvent::Connect).unwrap();
        assert!(m.apply(AppEvent::Connect).is_err());
        // Can't resume a non-paused presentation.
        m.apply(AppEvent::AuthOk).unwrap();
        assert!(m.apply(AppEvent::Resume).is_err());
    }

    #[test]
    fn admission_rejection_returns_to_disconnected() {
        let mut m = AppStateMachine::new();
        m.apply(AppEvent::Connect).unwrap();
        assert_eq!(
            m.apply(AppEvent::AdmissionRejected).unwrap(),
            AppState::Disconnected
        );
    }

    #[test]
    fn migration_failure_falls_back_to_browsing() {
        let mut m = AppStateMachine::new();
        m.apply(AppEvent::Connect).unwrap();
        m.apply(AppEvent::AuthOk).unwrap();
        m.apply(AppEvent::RequestDocument).unwrap();
        m.apply(AppEvent::ScenarioReceived).unwrap();
        m.apply(AppEvent::FollowRemoteLink).unwrap();
        assert_eq!(
            m.apply(AppEvent::MigrationFailed).unwrap(),
            AppState::Browsing
        );
    }

    #[test]
    fn disconnect_reachable_from_every_connected_state() {
        // §5: "the user can issue a disconnect request from the service, at
        // any time."
        for s in AppState::ALL {
            if s == AppState::Disconnected || s == AppState::Authenticating {
                continue; // mid-handshake disconnect is modelled as rejection
            }
            assert_eq!(
                transition(s, AppEvent::Disconnect),
                Some(AppState::Disconnected),
                "from {s}"
            );
        }
    }

    #[test]
    fn every_state_reachable() {
        let legal = all_legal_transitions();
        let reachable: BTreeSet<AppState> = legal.iter().map(|(_, _, t)| *t).collect();
        for s in AppState::ALL {
            if s == AppState::Disconnected {
                continue; // initial
            }
            assert!(reachable.contains(&s), "{s} unreachable");
        }
    }

    #[test]
    fn transition_function_is_deterministic_total_on_legal_pairs() {
        let legal = all_legal_transitions();
        assert!(
            legal.len() >= 24,
            "expected a rich diagram, got {}",
            legal.len()
        );
        // No (state, event) pair maps to two targets (by construction, but
        // assert for regression safety).
        let pairs: BTreeSet<(AppState, AppEvent)> =
            legal.iter().map(|(s, e, _)| (*s, *e)).collect();
        assert_eq!(pairs.len(), legal.len());
    }

    #[test]
    fn coverage_tracking() {
        let mut m = AppStateMachine::new();
        m.apply(AppEvent::Connect).unwrap();
        m.apply(AppEvent::AuthOk).unwrap();
        let cov = m.covered();
        assert!(cov.contains(&(AppState::Disconnected, AppEvent::Connect)));
        assert_eq!(cov.len(), 2);
    }
}

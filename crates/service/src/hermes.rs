//! The Hermes distance-education layer (paper §6): lesson libraries with
//! pre-orchestrated scenarios, media content, and tutor mail — generated
//! synthetically but shaped like the prototype's courseware.

use crate::protocol::MailMessage;
use crate::server_actor::ServerActor;
use hermes_core::{DocumentId, Encoding, MediaDuration, MediaKind, ServerId};
use hermes_simnet::SimRng;

/// Parameters of a generated lesson.
#[derive(Debug, Clone, Copy)]
pub struct LessonShape {
    /// Number of image figures.
    pub images: usize,
    /// Seconds each image stays on screen.
    pub image_secs: i64,
    /// Whether the lesson has a narrated (synchronized audio+video) segment.
    pub narrated_clip_secs: Option<i64>,
    /// Whether a closing audio summary plays.
    pub closing_audio_secs: Option<i64>,
}

impl Default for LessonShape {
    fn default() -> Self {
        LessonShape {
            images: 2,
            image_secs: 5,
            narrated_clip_secs: Some(8),
            closing_audio_secs: Some(4),
        }
    }
}

/// Generate the markup text of one lesson. The produced scenario follows the
/// Fig. 2 pattern: persistent lesson text, a sequence of figures, a
/// synchronized narration clip, a closing audio segment, and a timed
/// sequential link to the next lesson.
pub fn lesson_markup(
    title: &str,
    topic_words: &[&str],
    shape: LessonShape,
    next: Option<DocumentId>,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("<TITLE> {title} </TITLE>\n"));
    out.push_str(&format!("<H1> {title} </H1>\n"));
    out.push_str(&format!(
        "<TEXT> This lesson covers {}. Follow the tutor's sequence or explore the links. </TEXT>\n<PAR>\n",
        topic_words.join(", ")
    ));
    let mut t = 0i64;
    let mut id = 1u64;
    for i in 0..shape.images {
        out.push_str(&format!(
            "<IMG> SOURCE=figs/{title_key}-{i}.jpg STARTIME={t}s DURATION={d}s WHERE={x},40 WIDTH=320 HEIGHT=240 ID={id} NOTE=\"figure {i}\" </IMG>\n",
            title_key = title.to_lowercase().replace(' ', "-"),
            d = shape.image_secs,
            x = 20 + (i as i32) * 360,
        ));
        t += shape.image_secs;
        id += 1;
    }
    if let Some(clip) = shape.narrated_clip_secs {
        out.push_str(&format!(
            "<AU_VI> STARTIME={t}s DURATION={clip}s SOURCE=audio/narration-{key}.pcm SOURCE=video/clip-{key}.mpg ID={a} ID={v} NOTE=\"narrated clip\" </AU_VI>\n",
            key = title.to_lowercase().replace(' ', "-"),
            a = id,
            v = id + 1,
        ));
        t += clip;
        id += 2;
    }
    if let Some(secs) = shape.closing_audio_secs {
        out.push_str(&format!(
            "<AU> SOURCE=audio/summary-{key}.pcm STARTIME={t}s DURATION={secs}s ID={id} NOTE=\"summary\" </AU>\n",
            key = title.to_lowercase().replace(' ', "-"),
        ));
        t += secs;
    }
    if let Some(next) = next {
        out.push_str(&format!(
            "<HLINK> AT={t}s TO=doc{} KIND=SEQ NOTE=\"next lesson\" </HLINK>\n",
            next.raw()
        ));
    }
    out
}

/// Populate a server with a course of `n` linked lessons (documents
/// `first..first+n`), including all referenced media objects. Returns the
/// lesson document ids.
pub fn install_course(
    server: &mut ServerActor,
    course: &str,
    topic_words: &[&str],
    first: u64,
    n: usize,
    shape: LessonShape,
    rng: &mut SimRng,
) -> Vec<DocumentId> {
    let mut ids = Vec::new();
    for i in 0..n {
        let doc = DocumentId::new(first + i as u64);
        let next = if i + 1 < n {
            Some(DocumentId::new(first + i as u64 + 1))
        } else {
            None
        };
        let title = format!("{course} {}", i + 1);
        let markup = lesson_markup(&title, topic_words, shape, next);
        // Install media objects the markup references.
        let key = title.to_lowercase().replace(' ', "-");
        for img in 0..shape.images {
            server.db.store_mut(MediaKind::Image).add(
                format!("figs/{key}-{img}.jpg"),
                Encoding::Jpeg,
                MediaDuration::from_secs(shape.image_secs),
                rng.range_u64(0, u64::MAX / 2),
            );
        }
        if let Some(clip) = shape.narrated_clip_secs {
            server.db.store_mut(MediaKind::Audio).add(
                format!("audio/narration-{key}.pcm"),
                Encoding::Pcm,
                MediaDuration::from_secs(clip),
                rng.range_u64(0, u64::MAX / 2),
            );
            server.db.store_mut(MediaKind::Video).add(
                format!("video/clip-{key}.mpg"),
                Encoding::Mpeg,
                MediaDuration::from_secs(clip),
                rng.range_u64(0, u64::MAX / 2),
            );
        }
        if let Some(secs) = shape.closing_audio_secs {
            server.db.store_mut(MediaKind::Audio).add(
                format!("audio/summary-{key}.pcm"),
                Encoding::Pcm,
                MediaDuration::from_secs(secs),
                rng.range_u64(0, u64::MAX / 2),
            );
        }
        server
            .db
            .add_document(doc, markup, format!("{course} lesson {}", i + 1))
            .expect("generated lesson must be well-formed");
        ids.push(doc);
    }
    ids
}

/// A canned tutor reply, as §6.2.4 describes ("the tutor can send replies to
/// the user prompting him/her to retrieve specific lessons").
pub fn tutor_reply(student: &str, tutor: &str, lesson: DocumentId) -> MailMessage {
    MailMessage {
        from: tutor.to_string(),
        to: student.to_string(),
        subject: "Re: question".to_string(),
        body: format!(
            "Please retrieve lesson doc{} for the details.",
            lesson.raw()
        ),
        attachments: vec![("text/plain".into(), 256)],
    }
}

/// The Fig. 2 demonstration document installed with its media objects.
pub fn install_figure2(server: &mut ServerActor, doc: DocumentId, rng: &mut SimRng) {
    for (key, enc, secs) in [
        ("i1.jpg", Encoding::Jpeg, 5i64),
        ("i2.jpg", Encoding::Jpeg, 7),
    ] {
        server.db.store_mut(MediaKind::Image).add(
            key,
            enc,
            MediaDuration::from_secs(secs),
            rng.range_u64(0, u64::MAX / 2),
        );
    }
    server.db.store_mut(MediaKind::Audio).add(
        "a1.pcm",
        Encoding::Pcm,
        MediaDuration::from_secs(8),
        rng.range_u64(0, u64::MAX / 2),
    );
    server.db.store_mut(MediaKind::Audio).add(
        "a2.pcm",
        Encoding::Pcm,
        MediaDuration::from_secs(4),
        rng.range_u64(0, u64::MAX / 2),
    );
    server.db.store_mut(MediaKind::Video).add(
        "v.mpg",
        Encoding::Mpeg,
        MediaDuration::from_secs(8),
        rng.range_u64(0, u64::MAX / 2),
    );
    server
        .db
        .add_document(
            doc,
            hermes_hml::FIGURE2_MARKUP,
            "the paper's Fig. 2 scenario",
        )
        .expect("figure-2 markup is well-formed");
}

/// Shorthand used across experiments: the ServerId a document's relative
/// sources resolve against when installed by these helpers.
pub fn home_of(server: &ServerActor) -> ServerId {
    server.server_id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server_actor::ServerConfig;
    use hermes_core::NodeId;

    #[test]
    fn lesson_markup_parses_and_links() {
        let m = lesson_markup(
            "Networks 101",
            &["packets", "routing"],
            LessonShape::default(),
            Some(DocumentId::new(7)),
        );
        let s = hermes_hml::scenario_from_markup(&m, DocumentId::new(6), ServerId::new(0)).unwrap();
        assert!(s.is_well_formed(), "{:?}", s.validate());
        assert_eq!(s.sync_groups.len(), 1);
        assert_eq!(s.links.len(), 1);
        assert_eq!(s.links[0].target.document(), DocumentId::new(7));
        assert!(s.links[0].auto_at.is_some());
    }

    #[test]
    fn course_installation_complete() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut server =
            ServerActor::new(NodeId::new(1), ServerId::new(0), ServerConfig::default());
        let ids = install_course(
            &mut server,
            "Biology",
            &["cells", "plants"],
            10,
            3,
            LessonShape::default(),
            &mut rng,
        );
        assert_eq!(ids.len(), 3);
        assert_eq!(server.db.len(), 3);
        assert_eq!(server.db.topics().len(), 3);
        // Every referenced media object is installed.
        for id in &ids {
            let doc = server.db.document(*id).unwrap();
            for c in &doc.scenario.components {
                if let hermes_core::ComponentContent::Stored { source, encoding } = &c.content {
                    let store = server.db.store(encoding.kind());
                    assert!(
                        store.get(&source.object).is_some(),
                        "missing object {}",
                        source.object
                    );
                }
            }
        }
        // Lessons chain: lesson 1 links to lesson 2, etc.; the last has none.
        assert_eq!(
            server.db.document(ids[0]).unwrap().scenario.links[0]
                .target
                .document(),
            ids[1]
        );
        assert!(server
            .db
            .document(ids[2])
            .unwrap()
            .scenario
            .links
            .is_empty());
    }

    #[test]
    fn figure2_installation() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut server =
            ServerActor::new(NodeId::new(1), ServerId::new(0), ServerConfig::default());
        install_figure2(&mut server, DocumentId::new(1), &mut rng);
        let d = server.db.document(DocumentId::new(1)).unwrap();
        assert_eq!(d.scenario.components.len(), 6);
        assert!(server.db.store(MediaKind::Video).get("v.mpg").is_some());
    }

    #[test]
    fn tutor_reply_points_at_lesson() {
        let m = tutor_reply("s@hermes", "t@hermes", DocumentId::new(42));
        assert!(m.body.contains("doc42"));
        assert_eq!(m.to, "s@hermes");
    }
}

//! Spatial layout model.
//!
//! The markup language's `WHERE` keyword "introduces placing attributes in
//! media's representation, such as image's coordination on the display
//! device", and `HEIGHT`/`WIDTH` size an image. The layout abstraction is one
//! of the model's four logical abstractions (content / layout /
//! synchronization / interconnection).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle on the presentation desktop, in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Region {
    /// Left edge.
    pub x: i32,
    /// Top edge.
    pub y: i32,
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

impl Region {
    /// Construct a region.
    pub const fn new(x: i32, y: i32, width: u32, height: u32) -> Self {
        Region {
            x,
            y,
            width,
            height,
        }
    }
    /// Right edge (exclusive).
    pub const fn right(&self) -> i32 {
        self.x + self.width as i32
    }
    /// Bottom edge (exclusive).
    pub const fn bottom(&self) -> i32 {
        self.y + self.height as i32
    }
    /// Area in pixels.
    pub const fn area(&self) -> u64 {
        self.width as u64 * self.height as u64
    }
    /// True iff the region has zero area.
    pub const fn is_empty(&self) -> bool {
        self.width == 0 || self.height == 0
    }
    /// Do two regions overlap (share at least one pixel)?
    pub fn overlaps(&self, other: &Region) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.x < other.right()
            && other.x < self.right()
            && self.y < other.bottom()
            && other.y < self.bottom()
    }
    /// Does this region fully contain the other?
    pub fn contains(&self, other: &Region) -> bool {
        other.is_empty()
            || (self.x <= other.x
                && self.y <= other.y
                && self.right() >= other.right()
                && self.bottom() >= other.bottom())
    }
    /// Intersection of two regions, if non-empty.
    pub fn intersect(&self, other: &Region) -> Option<Region> {
        if !self.overlaps(other) {
            return None;
        }
        let x = self.x.max(other.x);
        let y = self.y.max(other.y);
        let r = self.right().min(other.right());
        let b = self.bottom().min(other.bottom());
        Some(Region::new(x, y, (r - x) as u32, (b - y) as u32))
    }
    /// Smallest region containing both.
    pub fn union(&self, other: &Region) -> Region {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        let x = self.x.min(other.x);
        let y = self.y.min(other.y);
        let r = self.right().max(other.right());
        let b = self.bottom().max(other.bottom());
        Region::new(x, y, (r - x) as u32, (b - y) as u32)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{}) {}x{}", self.x, self.y, self.width, self.height)
    }
}

/// Text style flags of the markup language (`B`, `I`, `U` keywords).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TextStyle {
    /// Boldface (`<B>`).
    pub bold: bool,
    /// Italics (`<I>`).
    pub italic: bool,
    /// Underline (`<U>`).
    pub underline: bool,
}

impl TextStyle {
    /// Plain, unstyled text.
    pub const PLAIN: TextStyle = TextStyle {
        bold: false,
        italic: false,
        underline: false,
    };
}

/// Heading levels (`H1`, `H2`, `H3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeadingLevel {
    /// `<H1>`
    H1,
    /// `<H2>`
    H2,
    /// `<H3>`
    H3,
}

impl HeadingLevel {
    /// Numeric level 1..=3.
    pub fn level(self) -> u8 {
        match self {
            HeadingLevel::H1 => 1,
            HeadingLevel::H2 => 2,
            HeadingLevel::H3 => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_detection() {
        let a = Region::new(0, 0, 100, 100);
        let b = Region::new(50, 50, 100, 100);
        let c = Region::new(100, 0, 10, 10); // touches a's right edge: no overlap
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(!a.overlaps(&Region::new(10, 10, 0, 5)));
    }

    #[test]
    fn intersection_and_union() {
        let a = Region::new(0, 0, 100, 100);
        let b = Region::new(50, 50, 100, 100);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, Region::new(50, 50, 50, 50));
        let u = a.union(&b);
        assert_eq!(u, Region::new(0, 0, 150, 150));
        assert!(u.contains(&a) && u.contains(&b) && u.contains(&i));
    }

    #[test]
    fn containment() {
        let a = Region::new(0, 0, 100, 100);
        assert!(a.contains(&Region::new(10, 10, 50, 50)));
        assert!(a.contains(&a));
        assert!(!a.contains(&Region::new(90, 90, 20, 20)));
        // Empty regions are contained everywhere.
        assert!(a.contains(&Region::new(500, 500, 0, 0)));
    }

    #[test]
    fn disjoint_intersection_is_none() {
        let a = Region::new(0, 0, 10, 10);
        let b = Region::new(20, 20, 10, 10);
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = Region::new(5, 5, 10, 10);
        let e = Region::default();
        assert_eq!(a.union(&e), a);
        assert_eq!(e.union(&a), a);
    }

    #[test]
    fn heading_levels() {
        assert_eq!(HeadingLevel::H1.level(), 1);
        assert_eq!(HeadingLevel::H3.level(), 3);
    }
}

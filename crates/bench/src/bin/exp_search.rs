//! EXP-SEARCH — claim (§6.2.2): a search fans out from the contacted server
//! to every other Hermes server; only matching lessons and their server
//! locations return to the user.
//!
//! Sweep the number of servers; measure result completeness and query
//! latency (request → merged response).

use hermes_bench::{ExpOpts, Table};
use hermes_core::{MediaTime, ServerId};
use hermes_service::{install_course, ClientConfig, LessonShape, ServerConfig, WorldBuilder};
use hermes_simnet::{LinkSpec, SimRng};

fn main() {
    let opts = ExpOpts::parse();
    let mut out = opts.sink();
    let base = opts.seed(0);
    let mut t = Table::new(vec![
        "servers",
        "lessons total",
        "matching",
        "hits returned",
        "servers in hits",
        "latency (ms)",
    ]);
    for &n_servers in &[1usize, 2, 4, 8] {
        let mut b = WorldBuilder::new(base + n_servers as u64);
        let mut server_nodes = Vec::new();
        for i in 0..n_servers {
            server_nodes.push(b.add_server(
                ServerId::new(i as u64),
                LinkSpec::wan(10_000_000, 5 + i as i64 * 3),
                ServerConfig::default(),
            ));
        }
        let client = b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default());
        let mut sim = b.build(base + n_servers as u64);
        let mut rng = SimRng::seed_from_u64(base + 99);
        let shape = LessonShape {
            images: 0,
            image_secs: 0,
            narrated_clip_secs: Some(4),
            closing_audio_secs: None,
        };
        // Each server holds 3 lessons; every second server's course mentions
        // the search token in its topic words.
        let mut total = 0;
        let mut matching = 0;
        for (i, node) in server_nodes.iter().enumerate() {
            let words: &[&str] = if i % 2 == 0 {
                &["glaciers", "ice"]
            } else {
                &["deserts", "sand"]
            };
            install_course(
                sim.app_mut().server_mut(*node),
                &format!("Course{i}"),
                words,
                (100 * (i + 1)) as u64,
                3,
                shape,
                &mut rng,
            );
            total += 3;
            if i % 2 == 0 {
                matching += 3;
            }
        }
        sim.with_api(|w, api| {
            w.client_mut(client).connect(api, server_nodes[0], None);
        });
        sim.run_until(MediaTime::from_secs(2));
        let t0 = sim.now();
        let q = sim.with_api(|w, api| w.client_mut(client).search(api, "glaciers"));
        // Run until the response lands.
        let mut latency_ms = None;
        for step in 1..200 {
            sim.run_until(t0 + hermes_core::MediaDuration::from_millis(step * 5));
            if sim.app().client(client).search_results.contains_key(&q) {
                latency_ms = Some(((sim.now() - t0).as_millis()) as u64);
                break;
            }
        }
        let c = sim.app().client(client);
        let hits = c.search_results.get(&q).cloned().unwrap_or_default();
        let servers_in_hits: std::collections::BTreeSet<ServerId> =
            hits.iter().map(|h| h.server).collect();
        assert_eq!(hits.len(), matching, "all matching lessons found");
        t.row(vec![
            n_servers.to_string(),
            total.to_string(),
            matching.to_string(),
            hits.len().to_string(),
            servers_in_hits.len().to_string(),
            latency_ms
                .map(|l| l.to_string())
                .unwrap_or("timeout".into()),
        ]);
    }
    out.table(
        "EXP-SEARCH — distributed search fan-out (token 'glaciers')",
        &t,
    );
    out.line(
        "expected shape: hits equal the matching lessons exactly at every scale;\n\
         latency grows with the slowest fanned-out server (the merge waits for all\n\
         partial results, §6.2.2).",
    );
}

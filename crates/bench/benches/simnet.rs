//! Criterion bench: discrete-event engine throughput — datagram and
//! reliable transports across a two-hop path, and routing computation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hermes_core::NodeId;
use hermes_simnet::{App, LinkSpec, LossModel, Network, Sim, SimApi, SimRng, WireSize};

#[derive(Clone)]
struct Payload(usize);
impl WireSize for Payload {
    fn wire_size(&self) -> usize {
        self.0
    }
}

struct Sink(u64);
impl App<Payload> for Sink {
    fn on_message(&mut self, _: &mut SimApi<'_, Payload>, _: NodeId, _: NodeId, _: Payload) {
        self.0 += 1;
    }
    fn on_timer(&mut self, _: &mut SimApi<'_, Payload>, _: NodeId, _: u64, _: u64) {}
}

fn two_hop(loss: f64, seed: u64) -> Network {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut net = Network::new();
    for (i, name) in ["src", "mid", "dst"].iter().enumerate() {
        net.add_node(NodeId::new(i as u64), *name);
    }
    let mut spec = LinkSpec::lan(100_000_000);
    if loss > 0.0 {
        spec.loss = LossModel::Bernoulli { p: loss };
    }
    net.add_duplex(NodeId::new(0), NodeId::new(1), spec.clone(), &mut rng);
    net.add_duplex(NodeId::new(1), NodeId::new(2), spec, &mut rng);
    net.compute_routes();
    net
}

fn bench_simnet(c: &mut Criterion) {
    let mut g = c.benchmark_group("simnet");
    const N: u64 = 1_000;

    g.throughput(Throughput::Elements(N));
    g.bench_function("datagrams_2hop_1k", |b| {
        b.iter(|| {
            let mut sim = Sim::new(two_hop(0.0, 1), Sink(0), 1);
            sim.with_api(|_, api| {
                for _ in 0..N {
                    api.send(NodeId::new(0), NodeId::new(2), Payload(1000));
                }
            });
            sim.run(u64::MAX);
            assert_eq!(sim.app().0, N);
        })
    });

    g.throughput(Throughput::Elements(N));
    g.bench_function("reliable_lossy_2hop_1k", |b| {
        b.iter(|| {
            let mut sim = Sim::new(two_hop(0.05, 2), Sink(0), 2);
            sim.with_api(|_, api| {
                for _ in 0..N {
                    api.send_reliable(NodeId::new(0), NodeId::new(2), Payload(1000));
                }
            });
            sim.run(u64::MAX);
            assert_eq!(sim.app().0, N);
        })
    });

    g.bench_function("routing_64_nodes", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from_u64(3);
            let mut net = Network::new();
            for i in 0..64u64 {
                net.add_node(NodeId::new(i), "n");
            }
            // Star around node 0 plus a ring.
            for i in 1..64u64 {
                net.add_duplex(
                    NodeId::new(0),
                    NodeId::new(i),
                    LinkSpec::lan(1_000_000),
                    &mut rng,
                );
                net.add_duplex(
                    NodeId::new(i),
                    NodeId::new(i % 63 + 1),
                    LinkSpec::lan(1_000_000),
                    &mut rng,
                );
            }
            net.compute_routes();
            net
        })
    });
    g.finish();
}

criterion_group!(benches, bench_simnet);
criterion_main!(benches);

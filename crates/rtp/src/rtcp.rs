//! RTCP control packets: sender reports, receiver reports and BYE.
//!
//! "RTP is followed by a control protocol (RTCP) ... The primary function of
//! RTCP is to provide feedback information ... RTCP feedback packets
//! containing this kind of information/measurements are sent back to the
//! sender, as receiver's reports" (§6.3). The server QoS manager feeds these
//! reports to the flow scheduler, which drives the quality converters.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// One report block of a receiver report (RFC 3550 §6.4.1 fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportBlock {
    /// The source this block describes.
    pub ssrc: u32,
    /// Fraction of packets lost since the previous report, as a fixed-point
    /// 8-bit value (fraction × 256).
    pub fraction_lost: u8,
    /// Cumulative packets lost (24-bit on the wire; clamped).
    pub cumulative_lost: u32,
    /// Extended highest sequence number received.
    pub ext_highest_seq: u32,
    /// Interarrival jitter in payload clock units.
    pub jitter: u32,
    /// Last SR timestamp (middle 32 bits of NTP); 0 if none.
    pub lsr: u32,
    /// Delay since last SR, in 1/65536 s units.
    pub dlsr: u32,
}

impl ReportBlock {
    /// Loss fraction as f64 in [0, 1].
    pub fn loss_fraction(&self) -> f64 {
        self.fraction_lost as f64 / 256.0
    }
    /// Build the 8-bit fixed-point loss field from a fraction.
    pub fn fraction_from_f64(f: f64) -> u8 {
        (f.clamp(0.0, 1.0) * 256.0).min(255.0) as u8
    }
}

/// RTCP packet variants used by the service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RtcpPacket {
    /// Sender report: sending stats + report blocks.
    SenderReport {
        /// Sender's SSRC.
        ssrc: u32,
        /// NTP-style timestamp (we carry simulation µs).
        ntp_timestamp: u64,
        /// RTP timestamp corresponding to the NTP instant.
        rtp_timestamp: u32,
        /// Total packets sent.
        packet_count: u32,
        /// Total payload bytes sent.
        octet_count: u32,
        /// Reception blocks (empty for a pure sender).
        reports: Vec<ReportBlock>,
    },
    /// Receiver report.
    ReceiverReport {
        /// Reporter's SSRC.
        ssrc: u32,
        /// Reception blocks.
        reports: Vec<ReportBlock>,
    },
    /// Goodbye — a source leaves the session.
    Bye {
        /// The departing SSRC.
        ssrc: u32,
    },
}

/// RTCP decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtcpDecodeError {
    /// Not enough bytes.
    Truncated,
    /// Unknown packet type code.
    UnknownType(u8),
    /// Version field is not 2.
    BadVersion(u8),
}

const PT_SR: u8 = 200;
const PT_RR: u8 = 201;
const PT_BYE: u8 = 203;

fn put_block(b: &mut BytesMut, r: &ReportBlock) {
    b.put_u32(r.ssrc);
    b.put_u8(r.fraction_lost);
    let lost = r.cumulative_lost.min(0x00FF_FFFF);
    b.put_u8((lost >> 16) as u8);
    b.put_u16((lost & 0xFFFF) as u16);
    b.put_u32(r.ext_highest_seq);
    b.put_u32(r.jitter);
    b.put_u32(r.lsr);
    b.put_u32(r.dlsr);
}

fn get_block(b: &mut Bytes) -> Result<ReportBlock, RtcpDecodeError> {
    if b.len() < 24 {
        return Err(RtcpDecodeError::Truncated);
    }
    let ssrc = b.get_u32();
    let fraction_lost = b.get_u8();
    let hi = b.get_u8() as u32;
    let lo = b.get_u16() as u32;
    Ok(ReportBlock {
        ssrc,
        fraction_lost,
        cumulative_lost: (hi << 16) | lo,
        ext_highest_seq: b.get_u32(),
        jitter: b.get_u32(),
        lsr: b.get_u32(),
        dlsr: b.get_u32(),
    })
}

impl RtcpPacket {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        match self {
            RtcpPacket::SenderReport {
                ssrc,
                ntp_timestamp,
                rtp_timestamp,
                packet_count,
                octet_count,
                reports,
            } => {
                b.put_u8((2 << 6) | (reports.len() as u8 & 0x1F));
                b.put_u8(PT_SR);
                b.put_u16(0); // length placeholder (filled below)
                b.put_u32(*ssrc);
                b.put_u64(*ntp_timestamp);
                b.put_u32(*rtp_timestamp);
                b.put_u32(*packet_count);
                b.put_u32(*octet_count);
                for r in reports {
                    put_block(&mut b, r);
                }
            }
            RtcpPacket::ReceiverReport { ssrc, reports } => {
                b.put_u8((2 << 6) | (reports.len() as u8 & 0x1F));
                b.put_u8(PT_RR);
                b.put_u16(0);
                b.put_u32(*ssrc);
                for r in reports {
                    put_block(&mut b, r);
                }
            }
            RtcpPacket::Bye { ssrc } => {
                b.put_u8((2 << 6) | 1);
                b.put_u8(PT_BYE);
                b.put_u16(0);
                b.put_u32(*ssrc);
            }
        }
        // Length in 32-bit words minus one (RFC 3550 §6.4).
        let words = (b.len() / 4 - 1) as u16;
        b[2..4].copy_from_slice(&words.to_be_bytes());
        b.freeze()
    }

    /// Decode from wire bytes.
    pub fn decode(mut data: Bytes) -> Result<RtcpPacket, RtcpDecodeError> {
        if data.len() < 8 {
            return Err(RtcpDecodeError::Truncated);
        }
        let b0 = data.get_u8();
        let version = b0 >> 6;
        if version != 2 {
            return Err(RtcpDecodeError::BadVersion(version));
        }
        let count = (b0 & 0x1F) as usize;
        let pt = data.get_u8();
        let _len = data.get_u16();
        match pt {
            PT_SR => {
                if data.len() < 24 {
                    return Err(RtcpDecodeError::Truncated);
                }
                let ssrc = data.get_u32();
                let ntp_timestamp = data.get_u64();
                let rtp_timestamp = data.get_u32();
                let packet_count = data.get_u32();
                let octet_count = data.get_u32();
                let mut reports = Vec::with_capacity(count);
                for _ in 0..count {
                    reports.push(get_block(&mut data)?);
                }
                Ok(RtcpPacket::SenderReport {
                    ssrc,
                    ntp_timestamp,
                    rtp_timestamp,
                    packet_count,
                    octet_count,
                    reports,
                })
            }
            PT_RR => {
                let ssrc = data.get_u32();
                let mut reports = Vec::with_capacity(count);
                for _ in 0..count {
                    reports.push(get_block(&mut data)?);
                }
                Ok(RtcpPacket::ReceiverReport { ssrc, reports })
            }
            PT_BYE => {
                let ssrc = data.get_u32();
                Ok(RtcpPacket::Bye { ssrc })
            }
            other => Err(RtcpDecodeError::UnknownType(other)),
        }
    }

    /// On-wire size including UDP/IP overhead.
    pub fn wire_size(&self) -> usize {
        self.encode().len() + crate::packet::UDP_IP_OVERHEAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(ssrc: u32) -> ReportBlock {
        ReportBlock {
            ssrc,
            fraction_lost: ReportBlock::fraction_from_f64(0.125),
            cumulative_lost: 321,
            ext_highest_seq: 0x0001_0042,
            jitter: 1234,
            lsr: 0xAABBCCDD,
            dlsr: 65536,
        }
    }

    #[test]
    fn receiver_report_round_trip() {
        let p = RtcpPacket::ReceiverReport {
            ssrc: 99,
            reports: vec![block(1), block(2)],
        };
        let q = RtcpPacket::decode(p.encode()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn sender_report_round_trip() {
        let p = RtcpPacket::SenderReport {
            ssrc: 7,
            ntp_timestamp: 123_456_789_012,
            rtp_timestamp: 90_000,
            packet_count: 1000,
            octet_count: 5_000_000,
            reports: vec![block(3)],
        };
        assert_eq!(RtcpPacket::decode(p.encode()).unwrap(), p);
    }

    #[test]
    fn bye_round_trip() {
        let p = RtcpPacket::Bye { ssrc: 42 };
        assert_eq!(RtcpPacket::decode(p.encode()).unwrap(), p);
    }

    #[test]
    fn length_field_correct() {
        let p = RtcpPacket::ReceiverReport {
            ssrc: 1,
            reports: vec![block(1)],
        };
        let wire = p.encode();
        // 8-byte header + 24-byte block = 32 bytes = 8 words → length 7.
        assert_eq!(wire.len(), 32);
        assert_eq!(u16::from_be_bytes([wire[2], wire[3]]), 7);
    }

    #[test]
    fn loss_fraction_fixed_point() {
        assert_eq!(ReportBlock::fraction_from_f64(0.0), 0);
        assert_eq!(ReportBlock::fraction_from_f64(0.5), 128);
        assert_eq!(ReportBlock::fraction_from_f64(1.0), 255);
        assert_eq!(ReportBlock::fraction_from_f64(2.0), 255);
        let b = block(1);
        assert!((b.loss_fraction() - 0.125).abs() < 1.0 / 256.0);
    }

    #[test]
    fn cumulative_lost_clamped_to_24_bits() {
        let mut b = block(1);
        b.cumulative_lost = 0x0F00_0000;
        let p = RtcpPacket::ReceiverReport {
            ssrc: 1,
            reports: vec![b],
        };
        match RtcpPacket::decode(p.encode()).unwrap() {
            RtcpPacket::ReceiverReport { reports, .. } => {
                assert_eq!(reports[0].cumulative_lost, 0x00FF_FFFF);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncated_and_unknown_rejected() {
        assert_eq!(
            RtcpPacket::decode(Bytes::from_static(&[0x80, 200])),
            Err(RtcpDecodeError::Truncated)
        );
        let mut wire = RtcpPacket::Bye { ssrc: 1 }.encode().to_vec();
        wire[1] = 222;
        assert_eq!(
            RtcpPacket::decode(Bytes::from(wire)),
            Err(RtcpDecodeError::UnknownType(222))
        );
    }
}

//! Codec rate models.
//!
//! The service never inspects media content — it schedules, transmits,
//! buffers and grades *frames of known size and deadline*. Each supported
//! encoding (paper Fig. 5: GIF/TIFF/BMP/JPEG images, PCM/ADPCM/VADPCM audio,
//! AVI/MPEG video) is modelled by its frame cadence and its per-quality-level
//! frame sizes. Quality levels form the grading ladder the Media Stream
//! Quality Converter walks: "increasing video compression factor or
//! decreasing audio sampling frequency" (§4).

use hermes_core::{Encoding, GradeLevel, LadderRung, MediaDuration, MediaKind, QualityLadder};
use serde::Serialize;

/// Parameters of one quality level of a continuous encoding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LevelParams {
    /// Frames (or audio blocks) per second at this level.
    pub frame_rate: u32,
    /// Mean frame/block payload size in bytes.
    pub mean_frame_bytes: u32,
    /// Human description of the level.
    pub label: &'static str,
}

impl LevelParams {
    /// Frame period.
    pub fn frame_period(&self) -> MediaDuration {
        MediaDuration::from_micros(1_000_000 / self.frame_rate as i64)
    }
    /// Mean bandwidth at this level, bits/second.
    pub fn bandwidth_bps(&self) -> u64 {
        self.mean_frame_bytes as u64 * 8 * self.frame_rate as u64
    }
}

/// The rate model of a continuous encoding: an ordered list of levels,
/// best first.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CodecModel {
    /// Which encoding this models.
    pub encoding: Encoding,
    /// Levels, index = grade level.
    pub levels: Vec<LevelParams>,
    /// Key-frame group size (GoP) — every `gop`-th video frame is a key
    /// frame roughly `key_scale`× the mean size. 0 disables (audio).
    pub gop: u32,
    /// Key-frame size multiplier (×100, integer to stay exact).
    pub key_scale_pct: u32,
}

impl CodecModel {
    /// The model for an encoding. Image/text encodings have a single-level
    /// "model" used only for quality-graded still transfers.
    pub fn for_encoding(encoding: Encoding) -> CodecModel {
        use Encoding::*;
        let (levels, gop, key_scale_pct): (Vec<LevelParams>, u32, u32) = match encoding {
            Mpeg => (
                vec![
                    LevelParams {
                        frame_rate: 25,
                        mean_frame_bytes: 7_500,
                        label: "25fps Q1 (1.5 Mbps)",
                    },
                    LevelParams {
                        frame_rate: 25,
                        mean_frame_bytes: 5_000,
                        label: "25fps Q2 (1.0 Mbps)",
                    },
                    LevelParams {
                        frame_rate: 25,
                        mean_frame_bytes: 3_000,
                        label: "25fps Q3 (600 kbps)",
                    },
                    LevelParams {
                        frame_rate: 15,
                        mean_frame_bytes: 3_000,
                        label: "15fps Q3 (360 kbps)",
                    },
                    LevelParams {
                        frame_rate: 10,
                        mean_frame_bytes: 2_500,
                        label: "10fps Q4 (200 kbps)",
                    },
                ],
                12,
                300,
            ),
            Avi => (
                // Motion-JPEG-like: every frame independent (gop 1).
                vec![
                    LevelParams {
                        frame_rate: 25,
                        mean_frame_bytes: 12_000,
                        label: "25fps MJPEG hi (2.4 Mbps)",
                    },
                    LevelParams {
                        frame_rate: 25,
                        mean_frame_bytes: 8_000,
                        label: "25fps MJPEG med (1.6 Mbps)",
                    },
                    LevelParams {
                        frame_rate: 15,
                        mean_frame_bytes: 8_000,
                        label: "15fps MJPEG med (960 kbps)",
                    },
                    LevelParams {
                        frame_rate: 10,
                        mean_frame_bytes: 6_000,
                        label: "10fps MJPEG lo (480 kbps)",
                    },
                ],
                1,
                100,
            ),
            Pcm => (
                // 20 ms blocks; sampling frequency halves down the ladder.
                vec![
                    LevelParams {
                        frame_rate: 50,
                        mean_frame_bytes: 1_764,
                        label: "44.1 kHz 16-bit (706 kbps)",
                    },
                    LevelParams {
                        frame_rate: 50,
                        mean_frame_bytes: 882,
                        label: "22.05 kHz 16-bit (353 kbps)",
                    },
                    LevelParams {
                        frame_rate: 50,
                        mean_frame_bytes: 441,
                        label: "11.025 kHz 16-bit (176 kbps)",
                    },
                ],
                0,
                100,
            ),
            Adpcm => (
                vec![
                    LevelParams {
                        frame_rate: 50,
                        mean_frame_bytes: 441,
                        label: "44.1 kHz ADPCM 4:1 (176 kbps)",
                    },
                    LevelParams {
                        frame_rate: 50,
                        mean_frame_bytes: 220,
                        label: "22.05 kHz ADPCM (88 kbps)",
                    },
                    LevelParams {
                        frame_rate: 50,
                        mean_frame_bytes: 110,
                        label: "11.025 kHz ADPCM (44 kbps)",
                    },
                ],
                0,
                100,
            ),
            Vadpcm => (
                vec![
                    LevelParams {
                        frame_rate: 50,
                        mean_frame_bytes: 330,
                        label: "VADPCM hi (132 kbps)",
                    },
                    LevelParams {
                        frame_rate: 50,
                        mean_frame_bytes: 165,
                        label: "VADPCM med (66 kbps)",
                    },
                    LevelParams {
                        frame_rate: 50,
                        mean_frame_bytes: 83,
                        label: "VADPCM lo (33 kbps)",
                    },
                ],
                0,
                100,
            ),
            Jpeg => (
                vec![
                    LevelParams {
                        frame_rate: 1,
                        mean_frame_bytes: 60_000,
                        label: "JPEG Q90",
                    },
                    LevelParams {
                        frame_rate: 1,
                        mean_frame_bytes: 30_000,
                        label: "JPEG Q60",
                    },
                    LevelParams {
                        frame_rate: 1,
                        mean_frame_bytes: 15_000,
                        label: "JPEG Q30",
                    },
                ],
                0,
                100,
            ),
            Gif => (
                vec![
                    LevelParams {
                        frame_rate: 1,
                        mean_frame_bytes: 45_000,
                        label: "GIF 256c",
                    },
                    LevelParams {
                        frame_rate: 1,
                        mean_frame_bytes: 25_000,
                        label: "GIF 64c",
                    },
                ],
                0,
                100,
            ),
            Tiff => (
                vec![LevelParams {
                    frame_rate: 1,
                    mean_frame_bytes: 200_000,
                    label: "TIFF lossless",
                }],
                0,
                100,
            ),
            Bmp => (
                vec![LevelParams {
                    frame_rate: 1,
                    mean_frame_bytes: 300_000,
                    label: "BMP raw",
                }],
                0,
                100,
            ),
            PlainText => (
                vec![LevelParams {
                    frame_rate: 1,
                    mean_frame_bytes: 2_000,
                    label: "text",
                }],
                0,
                100,
            ),
        };
        CodecModel {
            encoding,
            levels,
            gop,
            key_scale_pct,
        }
    }

    /// The media kind this codec serves.
    pub fn kind(&self) -> MediaKind {
        self.encoding.kind()
    }

    /// Deepest grade level this codec supports.
    pub fn max_level(&self) -> GradeLevel {
        GradeLevel((self.levels.len() - 1) as u8)
    }

    /// The level parameters at a grade level (clamped to the ladder depth).
    pub fn level(&self, level: GradeLevel) -> &LevelParams {
        let i = (level.0 as usize).min(self.levels.len() - 1);
        &self.levels[i]
    }

    /// The grading ladder of this codec (for the core grading engine).
    pub fn ladder(&self) -> QualityLadder {
        QualityLadder::new(
            self.levels
                .iter()
                .map(|l| LadderRung {
                    label: l.label.to_string(),
                    bandwidth_bps: l.bandwidth_bps(),
                })
                .collect(),
        )
    }

    /// Size in bytes of frame number `seq` at `level`, deterministic in
    /// `(seed, seq)`: key frames are scaled up, and a ±12.5% pseudo-random
    /// variation models content-dependent sizes.
    pub fn frame_size(&self, seed: u64, seq: u64, level: GradeLevel) -> u32 {
        let p = self.level(level);
        let base = if self.gop > 1 && seq.is_multiple_of(self.gop as u64) {
            (p.mean_frame_bytes as u64 * self.key_scale_pct as u64 / 100) as u32
        } else if self.gop > 1 {
            // Non-key frames shrink so the GoP mean stays ≈ mean_frame_bytes.
            let g = self.gop as u64;
            let ks = self.key_scale_pct as u64;
            let non_key = (p.mean_frame_bytes as u64 * (100 * g - ks)) / (100 * (g - 1));
            non_key as u32
        } else {
            p.mean_frame_bytes
        };
        // xorshift-style hash for a stable ±12.5% variation.
        let mut h = seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        let jitter = (h % 2500) as i64 - 1250; // ±12.5% in tenths of a percent
        let size = base as i64 + base as i64 * jitter / 10_000;
        size.max(16) as u32
    }

    /// Whether frame `seq` is a key frame (always true for audio blocks and
    /// gop-1 codecs — every unit is independently decodable).
    pub fn is_key_frame(&self, seq: u64) -> bool {
        self.gop <= 1 || seq.is_multiple_of(self.gop as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_encoding_has_a_model() {
        for e in Encoding::ALL {
            let m = CodecModel::for_encoding(e);
            assert!(!m.levels.is_empty(), "{e}");
            assert_eq!(m.encoding, e);
            assert_eq!(m.kind(), e.kind());
        }
    }

    #[test]
    fn ladders_are_monotone() {
        for e in Encoding::ALL {
            let m = CodecModel::for_encoding(e);
            let ladder = m.ladder(); // QualityLadder::new panics if not monotone
            assert_eq!(ladder.rungs.len(), m.levels.len(), "{e}");
        }
    }

    #[test]
    fn mpeg_bandwidth_matches_labels() {
        let m = CodecModel::for_encoding(Encoding::Mpeg);
        assert_eq!(m.level(GradeLevel(0)).bandwidth_bps(), 1_500_000);
        assert_eq!(m.level(GradeLevel(1)).bandwidth_bps(), 1_000_000);
        assert_eq!(m.level(GradeLevel(4)).bandwidth_bps(), 200_000);
    }

    #[test]
    fn audio_grading_halves_sampling() {
        let m = CodecModel::for_encoding(Encoding::Pcm);
        let b0 = m.level(GradeLevel(0)).bandwidth_bps();
        let b1 = m.level(GradeLevel(1)).bandwidth_bps();
        assert_eq!(b0, b1 * 2);
    }

    #[test]
    fn frame_sizes_deterministic_and_varied() {
        let m = CodecModel::for_encoding(Encoding::Mpeg);
        let a: Vec<u32> = (0..100)
            .map(|i| m.frame_size(7, i, GradeLevel(0)))
            .collect();
        let b: Vec<u32> = (0..100)
            .map(|i| m.frame_size(7, i, GradeLevel(0)))
            .collect();
        assert_eq!(a, b);
        let c: Vec<u32> = (0..100)
            .map(|i| m.frame_size(8, i, GradeLevel(0)))
            .collect();
        assert_ne!(a, c);
        // Variation exists.
        assert!(a.iter().any(|&x| x != a[0]));
    }

    #[test]
    fn key_frames_bigger_and_periodic() {
        let m = CodecModel::for_encoding(Encoding::Mpeg);
        assert!(m.is_key_frame(0));
        assert!(!m.is_key_frame(1));
        assert!(m.is_key_frame(12));
        let key = m.frame_size(1, 0, GradeLevel(0));
        let non_key = m.frame_size(1, 1, GradeLevel(0));
        assert!(key > non_key * 2, "key {key} non-key {non_key}");
    }

    #[test]
    fn gop_mean_close_to_nominal() {
        let m = CodecModel::for_encoding(Encoding::Mpeg);
        let n = 1200u64; // 100 GoPs
        let total: u64 = (0..n)
            .map(|i| m.frame_size(3, i, GradeLevel(0)) as u64)
            .sum();
        let mean = total as f64 / n as f64;
        let nominal = m.level(GradeLevel(0)).mean_frame_bytes as f64;
        assert!(
            (mean - nominal).abs() / nominal < 0.05,
            "mean {mean} vs {nominal}"
        );
    }

    #[test]
    fn audio_blocks_are_all_key() {
        let m = CodecModel::for_encoding(Encoding::Adpcm);
        assert!((0..100).all(|i| m.is_key_frame(i)));
    }

    #[test]
    fn frame_period_from_rate() {
        let m = CodecModel::for_encoding(Encoding::Pcm);
        assert_eq!(
            m.level(GradeLevel(0)).frame_period(),
            MediaDuration::from_millis(20)
        );
        let v = CodecModel::for_encoding(Encoding::Mpeg);
        assert_eq!(
            v.level(GradeLevel(0)).frame_period(),
            MediaDuration::from_micros(40_000)
        );
    }

    #[test]
    fn level_clamps_beyond_ladder() {
        let m = CodecModel::for_encoding(Encoding::Gif);
        assert_eq!(m.level(GradeLevel(9)), m.level(GradeLevel(1)));
        assert_eq!(m.max_level(), GradeLevel(1));
    }
}

//! Property tests on the media-tier segment cache: byte capacity is a hard
//! bound, eviction follows exact LRU order, and the interval-caching
//! admission policy keeps shared-viewer segments resident while one-off
//! fetches pass straight through.
//!
//! The cache is driven against a straightforward reference model (a recency
//! vector plus a byte map) under arbitrary operation sequences; any
//! divergence — in residency, order or accounting — fails the property.

use hermes_od::core::GradeLevel;
use hermes_od::media::SegmentFrame;
use hermes_od::server::{SegmentCache, SegmentKey};
use proptest::prelude::*;
use std::collections::BTreeMap;

const CAPACITY: u64 = 2_000;

fn object(o: u8) -> String {
    format!("obj-{o}")
}

fn key(o: u8, segment: u64) -> SegmentKey {
    SegmentKey {
        object: object(o),
        level: GradeLevel::NOMINAL,
        segment,
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Offer a segment: (object, segment, frame size, frame count).
    Insert(u8, u64, u32, u8),
    /// Look a segment up: (object, segment).
    Get(u8, u64),
    /// A stream over the object started.
    ReaderStart(u8),
    /// A stream over the object ended.
    ReaderEnd(u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0u8..3), (0u64..8), (50u32..300), (1u8..4))
            .prop_map(|(o, s, sz, n)| Op::Insert(o, s, sz, n)),
        ((0u8..3), (0u64..8)).prop_map(|(o, s)| Op::Get(o, s)),
        (0u8..3).prop_map(Op::ReaderStart),
        (0u8..3).prop_map(Op::ReaderEnd),
    ]
}

/// Drive one operation sequence through the cache next to a reference model,
/// checking every invariant after each step.
fn check_ops(ops: &[Op]) -> Result<(), String> {
    macro_rules! ensure {
        ($cond:expr, $($fmt:tt)+) => {
            if !($cond) {
                return Err(format!($($fmt)+));
            }
        };
    }
    let mut c = SegmentCache::new(CAPACITY);
    // Reference model: recency order (LRU first), bytes per resident key,
    // readers per object.
    let mut order: Vec<SegmentKey> = Vec::new();
    let mut bytes_of: BTreeMap<SegmentKey, u64> = BTreeMap::new();
    let mut readers: BTreeMap<u8, u32> = BTreeMap::new();
    for o in ops {
        match *o {
            Op::ReaderStart(obj) => {
                c.reader_started(&object(obj));
                *readers.entry(obj).or_insert(0) += 1;
            }
            Op::ReaderEnd(obj) => {
                c.reader_finished(&object(obj));
                let r = readers.entry(obj).or_insert(0);
                *r = r.saturating_sub(1);
            }
            Op::Get(obj, seg) => {
                let k = key(obj, seg);
                let hit = c.get(&k).is_some();
                let resident = order.contains(&k);
                ensure!(
                    hit == resident,
                    "get({k:?}) hit={hit}, model says {resident}"
                );
                if hit {
                    // A hit refreshes recency: the key moves to the MRU end.
                    let pos = order.iter().position(|x| *x == k).unwrap();
                    let k = order.remove(pos);
                    order.push(k);
                }
            }
            Op::Insert(obj, seg, size, n) => {
                let k = key(obj, seg);
                let frames = vec![SegmentFrame { size, key: true }; n as usize];
                let b = size as u64 * n as u64;
                let admitted = c.insert(k.clone(), frames);
                let should = *readers.get(&obj).unwrap_or(&0) >= 2 && b <= CAPACITY;
                ensure!(
                    admitted == should,
                    "insert({k:?}) admitted={admitted}, readers={:?}",
                    readers.get(&obj)
                );
                if admitted {
                    if let Some(pos) = order.iter().position(|x| *x == k) {
                        order.remove(pos);
                        bytes_of.remove(&k);
                    }
                    // Evict from the LRU end until the new segment fits.
                    let mut used: u64 = bytes_of.values().sum();
                    while used + b > CAPACITY {
                        let victim = order.remove(0);
                        used -= bytes_of.remove(&victim).unwrap();
                    }
                    order.push(k.clone());
                    bytes_of.insert(k, b);
                }
            }
        }
        // Hard invariants after every operation.
        ensure!(
            c.used_bytes() <= CAPACITY,
            "capacity exceeded: {} > {CAPACITY}",
            c.used_bytes()
        );
        let model_used: u64 = bytes_of.values().sum();
        ensure!(
            c.used_bytes() == model_used,
            "byte accounting diverged: cache={} model={model_used}",
            c.used_bytes()
        );
        ensure!(
            c.lru_order() == order,
            "LRU order diverged:\n cache={:?}\n model={order:?}",
            c.lru_order()
        );
        ensure!(c.len() == order.len(), "entry count diverged");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Under any sequence of inserts, lookups and reader churn: capacity is
    /// never exceeded, residency and eviction follow exact LRU order, byte
    /// accounting balances, and admission tracks the ≥2-readers interval
    /// policy precisely.
    #[test]
    fn cache_matches_reference_model(ops in proptest::collection::vec(op(), 0..200)) {
        if let Err(e) = check_ops(&ops) {
            prop_assert!(false, "{}", e);
        }
    }
}

/// Interval caching's point: segments of an object two viewers share stay
/// resident (and produce hits), while a single viewer's segments are never
/// admitted — they cannot displace the shared working set.
#[test]
fn shared_viewer_segments_stay_resident_solo_pass_through() {
    let mut c = SegmentCache::new(CAPACITY);
    c.reader_started("shared");
    c.reader_started("shared");
    c.reader_started("solo");
    for seg in 0..4 {
        assert!(c.insert(
            SegmentKey {
                object: "shared".into(),
                level: GradeLevel::NOMINAL,
                segment: seg,
            },
            vec![
                SegmentFrame {
                    size: 100,
                    key: true
                };
                2
            ],
        ));
        assert!(!c.insert(
            SegmentKey {
                object: "solo".into(),
                level: GradeLevel::NOMINAL,
                segment: seg,
            },
            vec![
                SegmentFrame {
                    size: 100,
                    key: true
                };
                2
            ],
        ));
    }
    // Every shared segment is still resident and hits; no solo segment is.
    for seg in 0..4 {
        assert!(c
            .get(&SegmentKey {
                object: "shared".into(),
                level: GradeLevel::NOMINAL,
                segment: seg,
            })
            .is_some());
        assert!(c
            .get(&SegmentKey {
                object: "solo".into(),
                level: GradeLevel::NOMINAL,
                segment: seg,
            })
            .is_none());
    }
    assert_eq!(c.stats.admitted, 4);
    assert_eq!(c.stats.rejected, 4);
    assert_eq!(c.stats.hits, 4);
}

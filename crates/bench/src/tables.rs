//! Plain-text table rendering for experiment output.

use hermes_core::MediaDuration;

/// A simple left-padded text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }
    /// Add a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row/header mismatch");
        self.rows.push(cells);
    }
    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            out.pop();
            out.pop();
            out.push('\n');
        };
        line(&self.headers, &widths, &mut out);
        let rule: String = widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ");
        out.push_str(&rule);
        out.push('\n');
        for r in &self.rows {
            line(r, &widths, &mut out);
        }
        out
    }
}

/// Print a table with a caption to stdout via a throwaway [`Sink`] (the
/// binaries that tee into `--out` call [`Sink::table`] directly).
///
/// [`Sink`]: crate::cli::Sink
/// [`Sink::table`]: crate::cli::Sink::table
pub fn print_table(caption: &str, table: &Table) {
    crate::cli::Sink::new(None).table(caption, table);
}

/// Milliseconds with one decimal, for experiment tables.
pub fn fmt_dur_ms(d: MediaDuration) -> String {
    format!("{:.1}", d.as_micros() as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["wide-cell", "x"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with("---------"));
    }

    #[test]
    #[should_panic(expected = "row/header mismatch")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1", "2"]);
    }

    #[test]
    fn fmt_ms() {
        assert_eq!(fmt_dur_ms(MediaDuration::from_micros(12_340)), "12.3");
    }
}

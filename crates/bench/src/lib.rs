//! # hermes-bench
//!
//! The experiment harness: shared world builders, metric extraction, table
//! printing and parallel parameter sweeps used by the `exp_*` binaries (one
//! per paper figure/table/claim — see DESIGN.md's reproduction index) and by
//! the criterion benches.

#![warn(missing_docs)]

pub mod cli;
pub mod harness;
pub mod tables;
pub mod workload;

pub use cli::{ExpOpts, Sink};
pub use harness::{
    max_dur_of, mean_of, run_seeds, run_streaming_session, standard_lesson, StreamingMetrics,
    StreamingParams,
};
pub use tables::{fmt_dur_ms, print_table, Table};
pub use workload::{poisson_arrivals, session_arrivals, Arrival, ZipfCatalog};

//! Randomized chaos: seeded [`FaultPlan`] generation and failing-plan
//! shrinking — the FoundationDB-style front half of the chaos harness
//! (the invariant checkers in `hermes_obs::invariants` are the back half).
//!
//! [`generate`] composes the fault vocabulary the engine understands —
//! crash storms, rolling restarts, access-link partitions, link flaps and
//! slow-node brownouts — into a schedule drawn from a seeded [`SimRng`].
//! Incidents target nodes *by role* ([`ChaosTargets`]), and a tunable
//! fraction of them is **correlated**: clustered around a few burst
//! centres so overlapping failures (a crash *during* a partition, a
//! brownout *during* a failover) actually happen instead of being washed
//! out by uniform spacing. Identical `(seed, targets, profile)` triples
//! yield identical plans.
//!
//! [`shrink`] is a greedy delta-debugging minimizer: given a plan whose
//! run violates an invariant and an oracle that re-runs a candidate plan,
//! it drops event chunks, then single events, then narrows fault windows
//! (pulling each repair toward its fault) while the violation still
//! reproduces — ending at a locally minimal repro to paste into a
//! regression test via [`FaultPlan::to_rust_literal`].

use crate::faults::{FaultEvent, FaultKind, FaultPlan};
use crate::rng::SimRng;
use hermes_core::{MediaDuration, MediaTime, NodeId};
use std::collections::BTreeMap;

/// Nodes grouped by service role, plus the hub they attach to. Worlds in
/// this repo are stars: every node hangs off one backbone node, so "the
/// node's access link" is the `(node, hub)` pair — that is what partitions
/// and flaps act on.
#[derive(Debug, Clone, Default)]
pub struct ChaosTargets {
    /// Multimedia-server nodes (crash/restart candidates).
    pub servers: Vec<NodeId>,
    /// Media-tier nodes (crash/restart and brownout candidates).
    pub media: Vec<NodeId>,
    /// Client nodes (access-link partition/flap candidates only: a crashed
    /// client is a set-top box switched off — the service cannot observe
    /// the difference, and its actor would survive as a timerless zombie,
    /// so process faults stay on the server side).
    pub clients: Vec<NodeId>,
    /// The backbone hub every access link attaches to.
    pub hub: NodeId,
}

impl ChaosTargets {
    /// True when no fault could target anything.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty() && self.media.is_empty() && self.clients.is_empty()
    }
}

/// Relative weights of the five incident families.
#[derive(Debug, Clone, Copy)]
pub struct IncidentWeights {
    /// A single node crash + restart.
    pub crash: u32,
    /// A staggered crash/restart wave across every node of one role.
    pub rolling_restart: u32,
    /// One access link partitioned for a window.
    pub partition: u32,
    /// One access link flapping down/up for a few cycles.
    pub flap: u32,
    /// One media node browning out (slow, not dead) for a window.
    pub brownout: u32,
}

/// Tunable intensity profile for [`generate`].
#[derive(Debug, Clone)]
pub struct ChaosProfile {
    /// Faults are injected inside `[start, end)`. Repairs may land a
    /// window-length past `end`; the plan's last event is the instant the
    /// system is fault-free again (the recovery checker's clock zero).
    pub start: MediaTime,
    /// End of the injection window.
    pub end: MediaTime,
    /// Expected incidents per simulated second inside the window.
    pub incident_rate: f64,
    /// Fraction of incidents pulled onto a burst centre instead of spread
    /// uniformly (0 = independent faults, 1 = everything correlated).
    pub burstiness: f64,
    /// Number of burst centres drawn inside the window.
    pub burst_centres: u32,
    /// Temporal spread of one burst: correlated incidents start within
    /// `[centre, centre + burst_span)`.
    pub burst_span: MediaDuration,
    /// Incident-family weights.
    pub weights: IncidentWeights,
    /// Role-targeting weights for crashes and partitions, in order
    /// (servers, media, clients). Roles with no nodes get weight 0
    /// automatically.
    pub role_bias: (u32, u32, u32),
    /// Crash-window length range `[min, max)`.
    pub crash_down: (MediaDuration, MediaDuration),
    /// Partition-window length range `[min, max)`.
    pub partition_len: (MediaDuration, MediaDuration),
    /// Brownout-window length range `[min, max)`.
    pub brownout_len: (MediaDuration, MediaDuration),
    /// Brownout slowdown factor range `[min, max)` (min ≥ 2).
    pub brownout_factor: (u32, u32),
    /// Flap cycle period and per-cycle outage.
    pub flap_period: MediaDuration,
    /// Outage per flap cycle (clamped to the period).
    pub flap_down: MediaDuration,
    /// Flap cycle count range `[min, max)`.
    pub flap_cycles: (u32, u32),
    /// Stagger between consecutive crashes of a rolling restart.
    pub rolling_stagger: MediaDuration,
}

impl ChaosProfile {
    /// A moderate profile over `[start, end)`: roughly one incident per
    /// second, a third of them correlated into bursts, windows of a few
    /// hundred milliseconds to a couple of seconds.
    pub fn moderate(start: MediaTime, end: MediaTime) -> Self {
        ChaosProfile {
            start,
            end,
            incident_rate: 1.0,
            burstiness: 0.35,
            burst_centres: 2,
            burst_span: MediaDuration::from_millis(800),
            weights: IncidentWeights {
                crash: 4,
                rolling_restart: 1,
                partition: 4,
                flap: 2,
                brownout: 3,
            },
            role_bias: (3, 4, 2),
            crash_down: (MediaDuration::from_millis(400), MediaDuration::from_secs(2)),
            partition_len: (MediaDuration::from_millis(300), MediaDuration::from_secs(3)),
            brownout_len: (MediaDuration::from_millis(500), MediaDuration::from_secs(3)),
            brownout_factor: (4, 16),
            flap_period: MediaDuration::from_millis(600),
            flap_down: MediaDuration::from_millis(200),
            flap_cycles: (2, 5),
            rolling_stagger: MediaDuration::from_millis(700),
        }
    }

    /// Scale the incident rate by `x` (the `--chaos-intensity` knob).
    pub fn with_intensity(mut self, x: f64) -> Self {
        self.incident_rate *= x.max(0.0);
        self
    }
}

/// Which subjects an incident occupies, so overlapping same-subject
/// windows are skipped (a second crash inside a crash window is schedule
/// noise, not extra chaos).
#[derive(Default)]
struct Occupancy {
    nodes: BTreeMap<NodeId, MediaTime>,
    links: BTreeMap<(NodeId, NodeId), MediaTime>,
}

impl Occupancy {
    fn node_free(&self, n: NodeId, at: MediaTime) -> bool {
        self.nodes.get(&n).is_none_or(|&until| at > until)
    }
    fn claim_node(&mut self, n: NodeId, until: MediaTime) {
        self.nodes.insert(n, until);
    }
    fn link_free(&self, a: NodeId, b: NodeId, at: MediaTime) -> bool {
        let key = (a.min(b), a.max(b));
        self.links.get(&key).is_none_or(|&until| at > until)
    }
    fn claim_link(&mut self, a: NodeId, b: NodeId, until: MediaTime) {
        self.links.insert((a.min(b), a.max(b)), until);
    }
}

fn dur_range(rng: &mut SimRng, (lo, hi): (MediaDuration, MediaDuration)) -> MediaDuration {
    let lo_us = lo.as_micros().max(1) as u64;
    let hi_us = hi.as_micros().max(0) as u64;
    if hi_us <= lo_us {
        return MediaDuration::from_micros(lo_us as i64);
    }
    MediaDuration::from_micros(rng.range_u64(lo_us, hi_us) as i64)
}

/// Pick a role (servers/media/clients) by weight, skipping empty roles.
/// Returns the role's node list, or `None` when every weighted role is
/// empty.
fn pick_role<'a>(
    rng: &mut SimRng,
    targets: &'a ChaosTargets,
    bias: (u32, u32, u32),
) -> Option<&'a [NodeId]> {
    let pools: [(&[NodeId], u32); 3] = [
        (&targets.servers, bias.0),
        (&targets.media, bias.1),
        (&targets.clients, bias.2),
    ];
    let total: u64 = pools
        .iter()
        .map(|(p, w)| if p.is_empty() { 0 } else { *w as u64 })
        .sum();
    if total == 0 {
        return None;
    }
    let mut draw = rng.range_u64(0, total);
    for (pool, w) in pools {
        let w = if pool.is_empty() { 0 } else { w as u64 };
        if draw < w {
            return Some(pool);
        }
        draw -= w;
    }
    None
}

fn pick_node(rng: &mut SimRng, pool: &[NodeId]) -> NodeId {
    pool[rng.range_u64(0, pool.len() as u64) as usize]
}

/// Generate a seeded random fault plan over `targets` with the given
/// profile. The returned plan is normalized (time-sorted, deduplicated)
/// and structurally valid, and every fault carries its repair: the system
/// is nominal again after the plan's last event.
pub fn generate(seed: u64, targets: &ChaosTargets, profile: &ChaosProfile) -> FaultPlan {
    let mut rng = SimRng::seed_from_u64(seed ^ 0xC4A0_5C4A_05C4_A05C);
    let window_us = (profile.end - profile.start).as_micros().max(0) as u64;
    if targets.is_empty() || window_us == 0 {
        return FaultPlan::new();
    }
    // Expected incident count, with the fractional part resolved by a
    // Bernoulli draw so low rates still fire sometimes.
    let expected = profile.incident_rate * window_us as f64 / 1e6;
    let mut incidents = expected.floor() as u32;
    if rng.chance(expected.fract()) {
        incidents += 1;
    }
    // Burst centres: the correlation anchors.
    let centres: Vec<MediaTime> = (0..profile.burst_centres.max(1))
        .map(|_| profile.start + MediaDuration::from_micros(rng.range_u64(0, window_us) as i64))
        .collect();
    let span_us = profile.burst_span.as_micros().max(1) as u64;

    let w = profile.weights;
    let families: [(u32, u8); 5] = [
        (w.crash, 0),
        (w.rolling_restart, 1),
        (w.partition, 2),
        (w.flap, 3),
        (w.brownout, 4),
    ];
    let wtotal: u64 = families.iter().map(|(w, _)| *w as u64).sum();

    let mut plan = FaultPlan::new();
    let mut busy = Occupancy::default();
    for _ in 0..incidents {
        // Incident start: clustered on a burst centre, or uniform.
        let at = if rng.chance(profile.burstiness) {
            let c = centres[rng.range_u64(0, centres.len() as u64) as usize];
            (c + MediaDuration::from_micros(rng.range_u64(0, span_us) as i64)).min(profile.end)
        } else {
            profile.start + MediaDuration::from_micros(rng.range_u64(0, window_us) as i64)
        };
        let family = if wtotal == 0 {
            0
        } else {
            let mut draw = rng.range_u64(0, wtotal);
            let mut picked = 0;
            for (fw, id) in families {
                if draw < fw as u64 {
                    picked = id;
                    break;
                }
                draw -= fw as u64;
            }
            picked
        };
        match family {
            // Crash one crashable node (servers and media only).
            0 => {
                let bias = (profile.role_bias.0, profile.role_bias.1, 0);
                let Some(pool) = pick_role(&mut rng, targets, bias) else {
                    continue;
                };
                let node = pick_node(&mut rng, pool);
                let down = dur_range(&mut rng, profile.crash_down);
                if busy.node_free(node, at) {
                    busy.claim_node(node, at + down);
                    plan = plan.crash_for(node, at, down);
                }
            }
            // Rolling restart: staggered crash/restart wave over one role.
            1 => {
                let pool = if !targets.media.is_empty() && rng.chance(0.5) {
                    &targets.media
                } else if !targets.servers.is_empty() {
                    &targets.servers
                } else {
                    continue;
                };
                let down = dur_range(&mut rng, profile.crash_down);
                for (i, &node) in pool.iter().enumerate() {
                    let t = at + profile.rolling_stagger * i as i64;
                    if busy.node_free(node, t) {
                        busy.claim_node(node, t + down);
                        plan = plan.crash_for(node, t, down);
                    }
                }
            }
            // Partition one access link.
            2 => {
                let Some(pool) = pick_role(&mut rng, targets, profile.role_bias) else {
                    continue;
                };
                let node = pick_node(&mut rng, pool);
                let len = dur_range(&mut rng, profile.partition_len);
                if busy.link_free(node, targets.hub, at) {
                    busy.claim_link(node, targets.hub, at + len);
                    plan = plan.partition(node, targets.hub, at, at + len);
                }
            }
            // Flap one access link.
            3 => {
                let Some(pool) = pick_role(&mut rng, targets, profile.role_bias) else {
                    continue;
                };
                let node = pick_node(&mut rng, pool);
                let (clo, chi) = profile.flap_cycles;
                let cycles = if chi > clo {
                    rng.range_u64(clo as u64, chi as u64) as u32
                } else {
                    clo.max(1)
                };
                if busy.link_free(node, targets.hub, at) {
                    busy.claim_link(node, targets.hub, at + profile.flap_period * cycles as i64);
                    plan = plan.flap(
                        node,
                        targets.hub,
                        at,
                        profile.flap_period,
                        profile.flap_down.min(profile.flap_period),
                        cycles,
                    );
                }
            }
            // Brownout one media node.
            _ => {
                if targets.media.is_empty() {
                    continue;
                }
                let node = pick_node(&mut rng, &targets.media);
                let len = dur_range(&mut rng, profile.brownout_len);
                let (flo, fhi) = profile.brownout_factor;
                let factor = if fhi > flo {
                    rng.range_u64(flo.max(2) as u64, fhi as u64) as u32
                } else {
                    flo.max(2)
                };
                if busy.node_free(node, at) {
                    busy.claim_node(node, at + len);
                    plan = plan.brownout(node, at, len, factor);
                }
            }
        }
    }
    let plan = plan.normalized();
    debug_assert!(plan.validate().is_ok(), "generator produced invalid plan");
    plan
}

/// Shrink a failing fault plan to a locally minimal repro.
///
/// `fails(candidate)` must re-run the simulation under `candidate` and
/// return `true` when the original violation still reproduces. The
/// minimizer first drops event chunks at halving granularity (classic
/// ddmin), then single events to a 1-minimal set, then narrows windows by
/// repeatedly halving each repair's distance to its fault. Every accepted
/// candidate fails, so the returned plan is guaranteed to reproduce the
/// violation; if the input plan itself does not fail, it is returned
/// unchanged.
pub fn shrink<F>(plan: &FaultPlan, mut fails: F) -> FaultPlan
where
    F: FnMut(&FaultPlan) -> bool,
{
    let mut events = plan.events();
    if !fails(&FaultPlan::from_events(events.clone())) {
        return plan.clone();
    }
    // Phase 1+2: chunked removal down to single events (ddmin). At each
    // granularity, try dropping every chunk; restart the pass whenever a
    // drop sticks.
    let mut chunk = (events.len() / 2).max(1);
    while !events.is_empty() {
        let mut shrunk = false;
        let mut start = 0;
        while start < events.len() {
            let end = (start + chunk).min(events.len());
            let mut candidate = events.clone();
            candidate.drain(start..end);
            if fails(&FaultPlan::from_events(candidate.clone())) {
                events = candidate;
                shrunk = true;
                // Re-test from the same offset: the next chunk slid left.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !shrunk {
            break;
        }
        if !shrunk || chunk > events.len() {
            chunk = (chunk / 2).max(1);
        }
    }
    // Phase 3: narrow windows — pull each repair halfway toward the most
    // recent prior fault on the same subject, while the violation holds.
    loop {
        let mut narrowed = false;
        for i in 0..events.len() {
            let FaultEvent { at, kind } = events[i];
            let Some(open_at) = window_open(&events, i) else {
                continue;
            };
            let gap = (at - open_at).as_micros();
            if gap <= 1 {
                continue;
            }
            let mid = open_at + MediaDuration::from_micros(gap / 2);
            let mut candidate = events.clone();
            candidate[i] = FaultEvent { at: mid, kind };
            candidate.sort_by_key(|e| e.at);
            if fails(&FaultPlan::from_events(candidate.clone())) {
                events = candidate;
                narrowed = true;
            }
        }
        if !narrowed {
            break;
        }
    }
    FaultPlan::from_events(events)
}

/// For a repair event at index `i`, the instant of the most recent prior
/// fault on the same subject (the window it closes), if any.
fn window_open(events: &[FaultEvent], i: usize) -> Option<MediaTime> {
    let closer = events[i].kind;
    let matches_open = |k: &FaultKind| match (closer, *k) {
        (FaultKind::NodeRestart { node }, FaultKind::NodeCrash { node: n }) => node == n,
        (FaultKind::LinkUp { a, b }, FaultKind::LinkDown { a: x, b: y }) => {
            (a, b) == (x, y) || (a, b) == (y, x)
        }
        (FaultKind::NodeNominal { node }, FaultKind::NodeSlow { node: n, .. }) => node == n,
        _ => false,
    };
    events[..i]
        .iter()
        .rev()
        .find(|e| matches_open(&e.kind))
        .map(|e| e.at)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets() -> ChaosTargets {
        ChaosTargets {
            servers: vec![NodeId::new(1), NodeId::new(2)],
            media: vec![NodeId::new(3), NodeId::new(4), NodeId::new(5)],
            clients: vec![NodeId::new(6), NodeId::new(7)],
            hub: NodeId::new(0),
        }
    }

    fn profile() -> ChaosProfile {
        ChaosProfile::moderate(MediaTime::from_secs(1), MediaTime::from_secs(9))
    }

    #[test]
    fn generation_is_deterministic() {
        let t = targets();
        let p = profile();
        for seed in 0..20 {
            assert_eq!(generate(seed, &t, &p), generate(seed, &t, &p));
        }
    }

    #[test]
    fn generated_plans_are_valid_and_repair_everything() {
        let t = targets();
        let p = profile().with_intensity(3.0);
        let mut non_empty = 0;
        for seed in 0..50 {
            let plan = generate(seed, &t, &p);
            plan.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            if !plan.is_empty() {
                non_empty += 1;
            }
            // Every fault family that opens a window also closes it.
            let mut down = std::collections::BTreeSet::new();
            for ev in plan.events() {
                match ev.kind {
                    FaultKind::NodeCrash { node } => {
                        down.insert(format!("p{}", node.raw()));
                    }
                    FaultKind::NodeRestart { node } => {
                        down.remove(&format!("p{}", node.raw()));
                    }
                    FaultKind::LinkDown { a, b } => {
                        down.insert(format!(
                            "l{}-{}",
                            a.raw().min(b.raw()),
                            a.raw().max(b.raw())
                        ));
                    }
                    FaultKind::LinkUp { a, b } => {
                        down.remove(&format!(
                            "l{}-{}",
                            a.raw().min(b.raw()),
                            a.raw().max(b.raw())
                        ));
                    }
                    FaultKind::NodeSlow { node, .. } => {
                        down.insert(format!("s{}", node.raw()));
                    }
                    FaultKind::NodeNominal { node } => {
                        down.remove(&format!("s{}", node.raw()));
                    }
                }
            }
            assert!(down.is_empty(), "seed {seed}: unrepaired faults {down:?}");
        }
        assert!(non_empty >= 45, "only {non_empty}/50 seeds produced faults");
    }

    #[test]
    fn intensity_scales_event_count() {
        let t = targets();
        let lo: usize = (0..30)
            .map(|s| generate(s, &t, &profile().with_intensity(0.5)).len())
            .sum();
        let hi: usize = (0..30)
            .map(|s| generate(s, &t, &profile().with_intensity(4.0)).len())
            .sum();
        assert!(hi > lo * 2, "intensity 4.0 ({hi}) not ≫ 0.5 ({lo})");
    }

    #[test]
    fn clients_never_crash() {
        let t = targets();
        let p = profile().with_intensity(4.0);
        for seed in 0..40 {
            for ev in generate(seed, &t, &p).events() {
                if let FaultKind::NodeCrash { node } | FaultKind::NodeSlow { node, .. } = ev.kind {
                    assert!(
                        !t.clients.contains(&node),
                        "seed {seed}: client process fault {ev:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn shrink_finds_minimal_culprit_set() {
        // Oracle: fails iff the plan still crashes node 3 AND partitions
        // the 4–0 link (order-free overlap condition).
        let n3 = NodeId::new(3);
        let n4 = NodeId::new(4);
        let hub = NodeId::new(0);
        let noisy = generate(11, &targets(), &profile().with_intensity(2.0))
            .crash_for(n3, MediaTime::from_secs(4), MediaDuration::from_secs(2))
            .partition(n4, hub, MediaTime::from_secs(4), MediaTime::from_secs(6));
        let fails = |p: &FaultPlan| {
            let evs = p.events();
            let crash = evs
                .iter()
                .any(|e| matches!(e.kind, FaultKind::NodeCrash { node } if node == n3));
            let cut = evs.iter().any(
                |e| matches!(e.kind, FaultKind::LinkDown { a, b } if (a, b) == (n4, hub) || (a, b) == (hub, n4)),
            );
            crash && cut
        };
        assert!(fails(&noisy), "precondition: the full plan must fail");
        let minimal = shrink(&noisy, fails);
        assert_eq!(
            minimal.len(),
            2,
            "minimal repro: {}",
            minimal.to_rust_literal()
        );
        assert!(fails(&minimal));
    }

    #[test]
    fn shrink_narrows_windows() {
        let n1 = NodeId::new(1);
        // Violation depends only on the crash happening; the 8 s outage
        // window should collapse toward zero.
        let plan =
            FaultPlan::new().crash_for(n1, MediaTime::from_secs(2), MediaDuration::from_secs(8));
        let fails = |p: &FaultPlan| {
            p.events()
                .iter()
                .any(|e| matches!(e.kind, FaultKind::NodeCrash { .. }))
        };
        let minimal = shrink(&plan, fails);
        // The restart itself is droppable? No: dropping it leaves the node
        // dead, which still "fails" under this oracle — so the minimal
        // plan is the bare crash.
        assert_eq!(minimal.len(), 1);
        assert!(matches!(
            minimal.events()[0].kind,
            FaultKind::NodeCrash { .. }
        ));
    }

    #[test]
    fn shrink_returns_plan_unchanged_when_not_failing() {
        let plan = FaultPlan::new().crash(NodeId::new(1), MediaTime::from_secs(1));
        let shrunk = shrink(&plan, |_| false);
        assert_eq!(shrunk, plan);
    }
}

//! FIG5 — the protocol stack: run a full session (document + media + mail)
//! and account every delivered message to its stack path, verifying the
//! paper's mapping — scenario/discrete media/control over TCP, continuous
//! media over RTP/UDP, feedback over RTCP, mail over SMTP/MIME.

use hermes_bench::{ExpOpts, Table};
use hermes_core::{MediaTime, ServerId};
use hermes_service::{
    install_course, ClientConfig, LessonShape, MailMessage, ServerConfig, StackPath, WorldBuilder,
};
use hermes_simnet::{LinkSpec, SimRng};

fn main() {
    let opts = ExpOpts::parse();
    let mut out = opts.sink();
    let seed = opts.seed(51);
    let mut b = WorldBuilder::new(seed);
    let server = b.add_server(
        ServerId::new(0),
        LinkSpec::lan(20_000_000),
        ServerConfig::default(),
    );
    let client = b.add_client(LinkSpec::lan(20_000_000), ClientConfig::default());
    let mut sim = b.build(seed);
    let mut rng = SimRng::seed_from_u64(seed.wrapping_add(1));
    let lessons = install_course(
        sim.app_mut().server_mut(server),
        "Stack",
        &["layers"],
        1,
        1,
        LessonShape {
            images: 2,
            image_secs: 3,
            narrated_clip_secs: Some(10),
            closing_audio_secs: None,
        },
        &mut rng,
    );
    sim.with_api(|w, api| {
        w.client_mut(client).connect(api, server, Some(lessons[0]));
    });
    sim.run_until(MediaTime::from_secs(20));
    // Exercise the mail path too.
    sim.with_api(|w, api| {
        w.client_mut(client).send_mail(
            api,
            MailMessage {
                from: "user@hermes".into(),
                to: "tutor@hermes".into(),
                subject: "stack".into(),
                body: "testing the SMTP path".into(),
                attachments: vec![("image/jpeg".into(), 2_000)],
            },
        );
        w.client_mut(client).fetch_mail(api, "tutor@hermes");
    });
    sim.run_until(MediaTime::from_secs(22));

    let world = sim.app();
    let c = world.client(client);
    assert!(c.errors.is_empty(), "{:?}", c.errors);

    let total_bytes: u64 = world.stack_bytes.values().map(|(_, b)| *b).sum();
    let mut t = Table::new(vec![
        "stack path (Fig. 5)",
        "transport",
        "packets",
        "bytes",
        "% of bytes",
    ]);
    let label = |p: &StackPath| match p {
        StackPath::ControlTcp => ("scenario + discrete media + control", "TCP/IP"),
        StackPath::MediaRtpUdp => ("continuous media (audio/video)", "RTP/UDP/IP"),
        StackPath::FeedbackRtcpUdp => ("receiver reports (feedback)", "RTCP/UDP/IP"),
        StackPath::MailSmtp => ("asynchronous interaction (mail)", "SMTP/MIME"),
        StackPath::MediaFetchTcp => ("media-tier segment fetch", "TCP/IP"),
    };
    for (path, (pkts, bytes)) in &world.stack_bytes {
        let (what, transport) = label(path);
        t.row(vec![
            what.to_string(),
            transport.to_string(),
            pkts.to_string(),
            bytes.to_string(),
            format!("{:.1}%", *bytes as f64 * 100.0 / total_bytes as f64),
        ]);
    }
    out.table(
        "Fig. 5 — protocol stack byte accounting (delivered messages)",
        &t,
    );

    // The paper's mapping must hold: all four paths were exercised, and
    // continuous media dominates the byte count.
    for p in [
        StackPath::ControlTcp,
        StackPath::MediaRtpUdp,
        StackPath::FeedbackRtcpUdp,
        StackPath::MailSmtp,
    ] {
        assert!(
            world
                .stack_bytes
                .get(&p)
                .map(|(n, _)| *n > 0)
                .unwrap_or(false),
            "stack path {p:?} unused"
        );
    }
    let media = world.stack_bytes[&StackPath::MediaRtpUdp].1;
    assert!(
        media * 2 > total_bytes,
        "continuous media should dominate bytes: {media} of {total_bytes}"
    );
    out.line("FIG5 reproduction ✓ (all four stack paths active, media dominates)");
}

//! OBS — observability: trace one lossy streaming session end-to-end and
//! measure what the tracing layer costs.
//!
//! Part 1 (trace): a session over a lossy access link with short-term
//! recovery and grading disabled, so playout gaps actually happen. The run
//! is checked against the acceptance properties — admission, prefill and
//! playout spans nested under the session root with correct sim-time
//! ordering, every engine glitch surfaced as a `playout_gap` event, and the
//! gap's flight-recorder dump carrying the preceding buffer-occupancy
//! context. `--trace PATH` exports `PATH.jsonl` (event log) and
//! `PATH.trace.json` (Chrome trace-event, loadable in Perfetto / UI at
//! ui.perfetto.dev); the per-session timeline and the flight report print
//! through the sink.
//!
//! Part 2 (degradations): the same lossy link with grading *on*: the QoS
//! loop's transitions must appear as `qos_degrade` / `stream_regraded`
//! events in the trace.
//!
//! Part 3 (overhead): wall-clock of the identical workload with tracing
//! runtime-enabled vs runtime-disabled (and, when the `trace` feature is
//! compiled out, everything free). Timings go to the sink only — never
//! into the exported trace files, which must stay byte-deterministic.

use hermes_bench::{run_streaming_session_traced, ExpOpts, Sink, StreamingParams, Table};
use hermes_client::PlayoutConfig;
use hermes_core::MediaTime;
use hermes_simnet::obs::{chrome_trace, events_jsonl, flight_report, session_timeline};
use hermes_simnet::{LossModel, Obs};

fn lossy_params(seed: u64, smoke: bool, grading: bool) -> StreamingParams {
    StreamingParams {
        seed,
        clip_secs: if smoke { 6 } else { 15 },
        horizon: MediaTime::from_secs(if smoke { 20 } else { 40 }),
        loss: LossModel::Bernoulli { p: 0.08 },
        // Starve the gap run: with recovery and grading off, a link slower
        // than the media rate runs the buffer dry at playout deadlines —
        // the visible glitches the trace must capture. The graded run keeps
        // the full rate so the QoS loop (not starvation) drives the story.
        access_bps: if grading { 4_000_000 } else { 800_000 },
        playout: if grading {
            PlayoutConfig::default()
        } else {
            PlayoutConfig::no_recovery()
        },
        grading,
        ..Default::default()
    }
}

/// The traced session id (from the root spans; exactly one session runs).
fn the_session(obs: &Obs) -> u64 {
    obs.spans
        .all()
        .iter()
        .find(|s| s.name == "session")
        .and_then(|s| s.labels.session)
        .expect("traced run recorded a session root span")
}

fn count(obs: &Obs, name: &str) -> usize {
    obs.events().iter().filter(|e| e.name == name).count()
}

fn check_gap_trace(obs: &Obs, glitches: u64, sink: &mut Sink) {
    let session = the_session(obs);
    let spans = obs.spans.for_session(session);
    let span_of = |name: &str| {
        *spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing {name} span"))
    };
    let root = span_of("session");
    let admission = span_of("admission");
    let prefill = span_of("prefill");
    let playout = span_of("playout");
    // Nesting: lifecycle phases hang under the session root and stay within
    // its sim-time extent, and prefill hands over to playout.
    for child in [admission, prefill, playout] {
        assert_eq!(child.parent, root.id, "{} not under root", child.name);
        assert!(child.start >= root.start);
    }
    assert!(prefill.end.expect("prefill closed") <= playout.start);
    assert!(admission.start <= prefill.start);
    // Every glitch the playout engine counted is in the trace.
    let gap_total: i64 = obs
        .events()
        .iter()
        .filter(|e| e.name == "playout_gap")
        .map(|e| e.value)
        .sum();
    assert!(glitches > 0, "the lossy run must actually glitch");
    assert_eq!(gap_total as u64, glitches, "every playout gap is traced");
    // The gap dumped the flight ring, and the dump carries the preceding
    // buffer-occupancy context.
    let dump = obs
        .flight
        .dumps()
        .iter()
        .find(|d| d.reason == "playout_gap")
        .expect("playout gap produced a flight dump");
    assert!(
        dump.events.iter().any(|e| e.name == "buffer_occupancy"),
        "gap dump carries buffer-occupancy history"
    );
    sink.line(&format!(
        "gap trace: {} events, {} spans, {} playout gaps, {} flight dumps",
        obs.events().len(),
        obs.spans.len(),
        gap_total,
        obs.flight.dumps().len()
    ));
}

fn main() {
    let opts = ExpOpts::parse();
    let mut sink = opts.sink();
    let seed = opts.seed(7);
    sink.line("OBS: sim-time tracing across the service stack (lossy session)");
    if !hermes_simnet::obs::TRACE_COMPILED {
        // The no-trace build still runs every workload; there is just
        // nothing to assert about or export.
        sink.line("trace feature compiled out — running workloads untraced");
        let p = lossy_params(seed, opts.smoke, false);
        let (m, _) = run_streaming_session_traced(&p, true);
        sink.line(&format!("glitches={} (untraced run ok)", m.glitches));
        return;
    }

    // -- Part 1: the forced-gap trace ------------------------------------
    let p = lossy_params(seed, opts.smoke, false);
    let (m, obs) = run_streaming_session_traced(&p, true);
    check_gap_trace(&obs, m.glitches, &mut sink);
    let session = the_session(&obs);
    sink.line(&session_timeline(&obs, session));
    // The full report repeats one dump per gap (bounded at the recorder's
    // cap); the first dump shows the shape, the files carry everything.
    let report = flight_report(&obs);
    let first_dump: String = report
        .lines()
        .enumerate()
        .take_while(|(i, l)| *i == 0 || !l.starts_with("flight dump"))
        .map(|(_, l)| format!("{l}\n"))
        .collect();
    sink.line(&first_dump);
    sink.line(&format!(
        "({} more dumps omitted, {} suppressed past the cap)",
        obs.flight.dumps().len().saturating_sub(1),
        obs.flight.suppressed
    ));
    if let Some(prefix) = &opts.trace {
        let mut jsonl = prefix.clone();
        jsonl.set_extension("jsonl");
        std::fs::write(&jsonl, events_jsonl(&obs)).expect("write JSONL trace");
        let mut chrome = prefix.clone();
        chrome.set_extension("trace.json");
        std::fs::write(&chrome, chrome_trace(&obs, p.horizon)).expect("write Chrome trace");
        sink.line(&format!(
            "exported {} and {} (load the latter in ui.perfetto.dev)",
            jsonl.display(),
            chrome.display()
        ));
    }

    // -- Part 2: degradation transitions under grading -------------------
    let pg = lossy_params(seed, opts.smoke, true);
    let (_, graded) = run_streaming_session_traced(&pg, true);
    let degrades = count(&graded, "qos_degrade");
    let regrades = count(&graded, "stream_regraded");
    assert!(
        degrades > 0,
        "8% loss with grading on must trace degrade transitions"
    );
    assert_eq!(
        degrades + count(&graded, "qos_upgrade"),
        regrades,
        "client sees exactly the regrades the server issued"
    );
    sink.line(&format!(
        "graded run: {degrades} degrades, {} upgrades, {} stops — all traced",
        count(&graded, "qos_upgrade"),
        count(&graded, "qos_stop"),
    ));

    // -- Part 3: overhead of the toggle -----------------------------------
    // Wall-clock only reaches the sink; the exported traces above must stay
    // byte-identical across runs.
    let reps = if opts.smoke { 50 } else { 150 };
    // Warm both paths once untimed, interleave the timed reps, and compare
    // per-rep *minima*: timing all-off then all-on lets allocator warmup
    // and clock drift land on one side, and scheduler stalls are additive
    // noise the minimum filters out of both.
    for enabled in [false, true] {
        let p = lossy_params(seed + 99, opts.smoke, false);
        std::hint::black_box(run_streaming_session_traced(&p, enabled));
    }
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    for r in 0..reps {
        // Alternate which side runs first so cache-warming from the
        // earlier run of a pair doesn't systematically favour one side.
        let order = if r % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        for enabled in order {
            let p = lossy_params(seed + 100 + r, opts.smoke, false);
            let start = std::time::Instant::now();
            let (m, _) = run_streaming_session_traced(&p, enabled);
            let dt = start.elapsed().as_secs_f64() * 1000.0;
            std::hint::black_box(m);
            if enabled {
                on = on.min(dt);
            } else {
                off = off.min(dt);
            }
        }
    }
    let mut t = Table::new(vec!["tracing", "ms/run"]);
    t.row(vec!["runtime-disabled".to_string(), format!("{off:.1}")]);
    t.row(vec!["enabled".to_string(), format!("{on:.1}")]);
    t.row(vec![
        "overhead".to_string(),
        format!("{:+.1}%", (on / off - 1.0) * 100.0),
    ]);
    sink.table("OBS overhead (wall clock, not part of the trace)", &t);
}

//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace uses serde derives purely as annotations — nothing
//! serializes through serde at runtime (experiment output is hand-rolled
//! CSV/plain text), so the hermetic stub accepts the derive syntax and
//! emits no code.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! The headless "browser" renderer: a textual desktop that shows what the
//! user would see at any instant of a presentation.
//!
//! The real Hermes browser was a Windows 95 / Unix GUI; all synchronization
//! behaviour lives below the GUI, so tests and experiments render the
//! desktop to text and assert on it (see DESIGN.md's substitution table).

use hermes_core::{
    ComponentContent, ComponentId, MediaKind, MediaTime, PlayoutSchedule, Scenario, TextBlock,
};
use std::fmt::Write;

/// One visible item on the desktop at some instant.
#[derive(Debug, Clone, PartialEq)]
pub struct DesktopItem {
    /// Which component.
    pub component: ComponentId,
    /// Its media kind.
    pub kind: MediaKind,
    /// Placement description.
    pub placement: String,
    /// Short content description (title line, object key, annotation).
    pub description: String,
}

/// Compute the items visible/audible at scenario-relative instant `t`.
pub fn desktop_at(
    scenario: &Scenario,
    schedule: &PlayoutSchedule,
    t: MediaTime,
) -> Vec<DesktopItem> {
    let mut items = Vec::new();
    for id in schedule.active_at(t) {
        let Some(c) = scenario.component(id) else {
            continue;
        };
        let placement = match c.region {
            Some(r) => r.to_string(),
            None => "flow".to_string(),
        };
        let description = match &c.content {
            ComponentContent::Text(blocks) => render_text_blocks(blocks, 48),
            ComponentContent::Stored { source, encoding } => {
                let note = c.note.as_deref().unwrap_or("");
                format!("{} [{}] {}", source.object, encoding, note)
                    .trim_end()
                    .to_string()
            }
        };
        items.push(DesktopItem {
            component: id,
            kind: c.kind(),
            placement,
            description,
        });
    }
    items
}

/// Render text blocks to a single-line summary capped at `max` chars.
pub fn render_text_blocks(blocks: &[TextBlock], max: usize) -> String {
    let mut out = String::new();
    for b in blocks {
        match b {
            TextBlock::Heading(level, text) => {
                let _ = write!(out, "[H{}] {} ", level.level(), text);
            }
            TextBlock::ParagraphBreak => out.push_str("¶ "),
            TextBlock::Separator => out.push_str("--- "),
            TextBlock::Runs(runs) => {
                for r in runs {
                    if r.style.bold {
                        let _ = write!(out, "*{}* ", r.text);
                    } else if r.style.italic {
                        let _ = write!(out, "_{}_ ", r.text);
                    } else if r.style.underline {
                        let _ = write!(out, "~{}~ ", r.text);
                    } else {
                        let _ = write!(out, "{} ", r.text);
                    }
                }
            }
        }
    }
    let out = out.trim_end();
    if out.chars().count() > max {
        let truncated: String = out.chars().take(max.saturating_sub(1)).collect();
        format!("{truncated}…")
    } else {
        out.to_string()
    }
}

/// Render the whole timeline as a text storyboard sampled every `step_ms`.
pub fn storyboard(scenario: &Scenario, schedule: &PlayoutSchedule, step_ms: i64) -> String {
    let mut out = String::new();
    let mut t = MediaTime::ZERO;
    while t <= schedule.end {
        let items = desktop_at(scenario, schedule, t);
        let _ = writeln!(out, "t={}", t);
        for it in items {
            let _ = writeln!(
                out,
                "  {:<7} {:<10} @{:<20} {}",
                it.kind.to_string(),
                it.component.to_string(),
                it.placement,
                it.description
            );
        }
        t += hermes_core::MediaDuration::from_millis(step_ms);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_core::{DocumentId, ServerId};
    use hermes_core::{HeadingLevel, TextRun, TextStyle};
    use hermes_hml::{scenario_from_markup, FIGURE2_MARKUP};

    fn fig2() -> (Scenario, PlayoutSchedule) {
        let s = scenario_from_markup(FIGURE2_MARKUP, DocumentId::new(1), ServerId::new(0)).unwrap();
        let sched = PlayoutSchedule::from_scenario(&s);
        (s, sched)
    }

    #[test]
    fn desktop_matches_figure2_timeline() {
        let (s, sched) = fig2();
        // At t=2s: background text + image I1.
        let items = desktop_at(&s, &sched, MediaTime::from_secs(2));
        let kinds: Vec<MediaKind> = items.iter().map(|i| i.kind).collect();
        assert!(kinds.contains(&MediaKind::Text));
        assert!(kinds.contains(&MediaKind::Image));
        assert_eq!(kinds.iter().filter(|k| **k == MediaKind::Image).count(), 1);
        // At t=7s: text, I2, audio A1 and video V.
        let items = desktop_at(&s, &sched, MediaTime::from_secs(7));
        let kinds: Vec<MediaKind> = items.iter().map(|i| i.kind).collect();
        assert!(kinds.contains(&MediaKind::Audio));
        assert!(kinds.contains(&MediaKind::Video));
        // Description carries the object key.
        assert!(items.iter().any(|i| i.description.contains("v.mpg")));
    }

    #[test]
    fn text_rendering_styles() {
        let blocks = vec![
            TextBlock::Heading(HeadingLevel::H1, "Intro".into()),
            TextBlock::Runs(vec![
                TextRun {
                    text: "plain".into(),
                    style: TextStyle::PLAIN,
                },
                TextRun {
                    text: "bold".into(),
                    style: TextStyle {
                        bold: true,
                        ..TextStyle::PLAIN
                    },
                },
            ]),
            TextBlock::ParagraphBreak,
        ];
        let s = render_text_blocks(&blocks, 100);
        assert_eq!(s, "[H1] Intro plain *bold* ¶");
    }

    #[test]
    fn text_rendering_truncates() {
        let blocks = vec![TextBlock::Runs(vec![TextRun {
            text: "x".repeat(100),
            style: TextStyle::PLAIN,
        }])];
        let s = render_text_blocks(&blocks, 10);
        assert!(s.chars().count() <= 10);
        assert!(s.ends_with('…'));
    }

    #[test]
    fn storyboard_covers_whole_presentation() {
        let (s, sched) = fig2();
        let sb = storyboard(&s, &sched, 1_000);
        assert!(sb.contains("t=0.000s"));
        assert!(sb.contains("t=19.000s"));
        assert!(sb.contains("i1.jpg"));
        assert!(sb.contains("a2.pcm"));
    }
}

//! Open-loop workload generation for scale experiments: Poisson session
//! arrivals over a Zipf-distributed catalog.
//!
//! VoD audiences are bursty and popularity-skewed: requests arrive
//! independently (Poisson) and concentrate on a few hot titles (Zipf).
//! Stream sharing lives or dies by that skew — a batching window only
//! merges requests that land on the *same* object — so the scale
//! experiment drives the service with exactly this classic model and
//! sweeps the skew parameter `s`.
//!
//! Everything here is deterministic given a seed: the same `SimRng`
//! produces the same arrival schedule, which the CI determinism gate
//! relies on.

use hermes_core::{MediaDuration, MediaTime};
use hermes_simnet::SimRng;

/// A Zipf(s, N) popularity distribution over catalog ranks `0..N`
/// (rank 0 = most popular): `P(rank r) ∝ 1 / (r + 1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfCatalog {
    cdf: Vec<f64>,
}

impl ZipfCatalog {
    /// A catalog of `n` titles with skew `s` (`s = 0` is uniform; larger
    /// `s` concentrates mass on the top ranks).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "empty catalog");
        assert!(s >= 0.0, "negative skew");
        let weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        ZipfCatalog { cdf }
    }

    /// Number of titles.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (the constructor rejects empty catalogs).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of `rank`.
    pub fn probability(&self, rank: usize) -> f64 {
        let above = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - above
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// One scheduled session request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// When the viewer asks for the document.
    pub at: MediaTime,
    /// Catalog rank of the requested title (0 = most popular).
    pub rank: usize,
}

/// Poisson arrival times at `rate_per_sec` up to (excluding) `horizon`.
pub fn poisson_arrivals(rng: &mut SimRng, rate_per_sec: f64, horizon: MediaTime) -> Vec<MediaTime> {
    assert!(rate_per_sec > 0.0, "non-positive arrival rate");
    let mut out = Vec::new();
    let mut t = MediaTime::ZERO;
    loop {
        let gap_secs = rng.exponential(1.0 / rate_per_sec);
        t += MediaDuration::from_micros((gap_secs * 1e6) as i64);
        if t >= horizon {
            return out;
        }
        out.push(t);
    }
}

/// A full open-loop schedule: Poisson arrivals, each assigned a
/// Zipf-sampled catalog rank. Sorted by time, deterministic in `seed`.
pub fn session_arrivals(
    seed: u64,
    rate_per_sec: f64,
    horizon: MediaTime,
    catalog: &ZipfCatalog,
) -> Vec<Arrival> {
    let mut rng = SimRng::seed_from_u64(seed);
    poisson_arrivals(&mut rng, rate_per_sec, horizon)
        .into_iter()
        .map(|at| Arrival {
            at,
            rank: catalog.sample(&mut rng),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_mass_sums_to_one_and_decreases_by_rank() {
        let z = ZipfCatalog::new(10, 1.2);
        let total: f64 = (0..z.len()).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for r in 1..z.len() {
            assert!(z.probability(r) < z.probability(r - 1));
        }
    }

    #[test]
    fn larger_skew_concentrates_on_the_head() {
        let flat = ZipfCatalog::new(20, 0.4);
        let steep = ZipfCatalog::new(20, 1.4);
        assert!(steep.probability(0) > flat.probability(0));
        assert!(steep.probability(19) < flat.probability(19));
        // s = 0 is uniform.
        let uniform = ZipfCatalog::new(4, 0.0);
        for r in 0..4 {
            assert!((uniform.probability(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_tracks_the_distribution() {
        let z = ZipfCatalog::new(8, 1.0);
        let mut rng = SimRng::seed_from_u64(7);
        let mut counts = [0usize; 8];
        let n = 20_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &c) in counts.iter().enumerate() {
            let expect = z.probability(r) * n as f64;
            assert!(
                (c as f64 - expect).abs() < expect * 0.25 + 20.0,
                "rank {r}: observed {c}, expected ≈{expect:.0}"
            );
        }
        // The head dominates the tail.
        assert!(counts[0] > 4 * counts[7]);
    }

    #[test]
    fn poisson_mean_count_matches_rate() {
        let mut rng = SimRng::seed_from_u64(11);
        let times = poisson_arrivals(&mut rng, 20.0, MediaTime::from_secs(100));
        let n = times.len() as f64;
        assert!((n - 2_000.0).abs() < 200.0, "got {n} arrivals");
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "unsorted arrivals");
        assert!(*times.last().unwrap() < MediaTime::from_secs(100));
    }

    #[test]
    fn schedules_are_deterministic_in_seed() {
        let z = ZipfCatalog::new(12, 1.0);
        let a = session_arrivals(42, 15.0, MediaTime::from_secs(30), &z);
        let b = session_arrivals(42, 15.0, MediaTime::from_secs(30), &z);
        assert_eq!(a, b);
        let c = session_arrivals(43, 15.0, MediaTime::from_secs(30), &z);
        assert_ne!(a, c);
        assert!(!a.is_empty());
    }
}

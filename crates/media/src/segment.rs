//! Segment addressing over deterministic frame sequences.
//!
//! The distributed media tier moves frames between nodes in *segments*:
//! fixed-length runs of consecutive frames of one object at one quality
//! level. Because a [`MediaObject`]'s frame
//! sequence is fully determined by `(seed, seq, level)`, a media-server
//! node can compute any segment on demand with no per-stream state — the
//! fetch protocol is stateless and a segment is a natural cache unit.

use crate::codec::CodecModel;
use crate::store::MediaObject;
use hermes_core::GradeLevel;
use serde::{Deserialize, Serialize};

/// The content spec of one frame inside a fetched segment: everything the
/// pulling multimedia server cannot regenerate locally without the object's
/// content seed. Timing (pts/period) stays with the puller's own pacer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentFrame {
    /// Payload size in bytes.
    pub size: u32,
    /// Key frame (independently decodable)?
    pub key: bool,
}

/// Total number of frames `object` yields at `level` (its intrinsic
/// duration divided by the level's frame period; images are one frame).
pub fn frames_at_level(object: &MediaObject, level: GradeLevel) -> u64 {
    let model = CodecModel::for_encoding(object.encoding);
    let period = model.level(level).frame_period().as_micros().max(1);
    let micros = object.duration.as_micros().max(0);
    // Ceil: a trailing partial period still emits one frame at its start.
    (((micros + period - 1) / period).max(1)) as u64
}

/// Compute segment `segment` of `object` at `level`, with
/// `frames_per_segment` frames per segment. Global frame index `i` of the
/// `k`-th frame in the segment is `segment * frames_per_segment + k`.
///
/// Serving is deliberately *unbounded*: the object's duration does not clip
/// the segment. The pulling multimedia server's pacer owns the stream's
/// timeline and stops it at the presentation duration; a mid-stream level
/// switch can legitimately move the pacer's frame index past the object's
/// intrinsic frame count at the new level (slower levels have fewer frames
/// per wall-clock second), and a clipped — empty — reply there would stall
/// the stream forever.
pub fn segment_frames(
    object: &MediaObject,
    level: GradeLevel,
    segment: u64,
    frames_per_segment: u32,
) -> Vec<SegmentFrame> {
    let model = CodecModel::for_encoding(object.encoding);
    let level = GradeLevel(level.0.min(model.max_level().0));
    let first = segment.saturating_mul(frames_per_segment as u64);
    (first..first.saturating_add(frames_per_segment as u64))
        .map(|seq| SegmentFrame {
            size: model.frame_size(object.seed, seq, level),
            key: model.is_key_frame(seq),
        })
        .collect()
}

/// Sum of payload bytes in a segment (cache accounting).
pub fn segment_bytes(frames: &[SegmentFrame]) -> u64 {
    frames.iter().map(|f| f.size as u64).sum()
}

/// The segment holding global frame index `seq`, and the offset of that
/// frame within the segment.
pub fn segment_of_frame(seq: u64, frames_per_segment: u32) -> (u64, u32) {
    let fps = frames_per_segment.max(1) as u64;
    (seq / fps, (seq % fps) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_core::{ComponentId, Encoding, MediaDuration};

    fn obj() -> MediaObject {
        MediaObject {
            key: "v.mpg".into(),
            encoding: Encoding::Mpeg,
            duration: MediaDuration::from_secs(8),
            seed: 42,
        }
    }

    #[test]
    fn segments_tile_the_stream_exactly() {
        let o = obj();
        let total = frames_at_level(&o, GradeLevel::NOMINAL);
        assert_eq!(total, 200); // 25 fps × 8 s
        let mut stitched = Vec::new();
        let mut seg = 0;
        while (stitched.len() as u64) < total {
            stitched.extend(segment_frames(&o, GradeLevel::NOMINAL, seg, 32));
            seg += 1;
        }
        stitched.truncate(total as usize);
        assert_eq!(stitched.len(), 200);
        // Segment contents match what a local FrameSource generates.
        let local =
            crate::frames::FrameSource::new(ComponentId::new(1), o.encoding, o.seed, o.duration)
                .collect_all();
        for (spec, frame) in stitched.iter().zip(local.iter()) {
            assert_eq!(spec.size, frame.size);
            assert_eq!(spec.key, frame.key);
        }
    }

    #[test]
    fn serving_is_unbounded_past_the_object_duration() {
        let o = obj();
        // 200 frames at nominal, but segments past the end still serve:
        // after a mid-stream switch to a slower level the pacer's index can
        // exceed the object's frame count at that level, and the puller's
        // pacer — not the media node — bounds the stream.
        assert_eq!(segment_frames(&o, GradeLevel::NOMINAL, 3, 64).len(), 64);
        assert_eq!(segment_frames(&o, GradeLevel::NOMINAL, 10, 64).len(), 64);
        // Statelessness: recomputation yields the identical segment.
        assert_eq!(
            segment_frames(&o, GradeLevel::NOMINAL, 10, 64),
            segment_frames(&o, GradeLevel::NOMINAL, 10, 64)
        );
    }

    #[test]
    fn level_is_clamped_to_the_ladder() {
        let o = obj();
        let deep = segment_frames(&o, GradeLevel(99), 0, 16);
        let model = CodecModel::for_encoding(o.encoding);
        let floor = segment_frames(&o, model.max_level(), 0, 16);
        assert_eq!(deep, floor);
    }

    #[test]
    fn segment_of_frame_round_trips() {
        assert_eq!(segment_of_frame(0, 32), (0, 0));
        assert_eq!(segment_of_frame(31, 32), (0, 31));
        assert_eq!(segment_of_frame(32, 32), (1, 0));
        assert_eq!(segment_of_frame(100, 32), (3, 4));
        // Degenerate fps guards against division by zero.
        assert_eq!(segment_of_frame(5, 0), (5, 0));
    }

    #[test]
    fn images_are_one_single_frame_segment() {
        let o = MediaObject {
            key: "i.jpg".into(),
            encoding: Encoding::Jpeg,
            duration: MediaDuration::from_secs(1),
            seed: 7,
        };
        assert_eq!(frames_at_level(&o, GradeLevel::NOMINAL), 1);
        let s0 = segment_frames(&o, GradeLevel::NOMINAL, 0, 1);
        assert_eq!(s0.len(), 1);
        assert!(s0[0].key);
    }

    #[test]
    fn segment_bytes_sums_payloads() {
        let o = obj();
        let frames = segment_frames(&o, GradeLevel::NOMINAL, 0, 8);
        assert_eq!(
            segment_bytes(&frames),
            frames.iter().map(|f| f.size as u64).sum::<u64>()
        );
        assert!(segment_bytes(&frames) > 0);
    }
}

#![allow(clippy::field_reassign_with_default)]
//! End-to-end session tests: full service runs over the simulated network.

use hermes_client::AppState;
use hermes_core::{DocumentId, MediaDuration, MediaTime, ServerId};
use hermes_service::{
    install_course, install_figure2, ClientConfig, LessonShape, ServerConfig, WorldBuilder,
};
use hermes_simnet::{LinkSpec, SimRng};

/// One server with Fig. 2 + a short course, one client, clean 10 Mbps links.
fn basic_world() -> (
    hermes_simnet::Sim<hermes_service::ServiceMsg, hermes_service::ServiceWorld>,
    hermes_core::NodeId,
    hermes_core::NodeId,
) {
    let mut b = WorldBuilder::new(7);
    let srv = b.add_server(
        ServerId::new(0),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
    );
    let cli = b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default());
    let mut sim = b.build(7);
    let mut rng = SimRng::seed_from_u64(99);
    install_figure2(sim.app_mut().server_mut(srv), DocumentId::new(1), &mut rng);
    install_course(
        sim.app_mut().server_mut(srv),
        "Networks",
        &["packets", "routing"],
        10,
        2,
        LessonShape::default(),
        &mut rng,
    );
    (sim, srv, cli)
}

#[test]
fn full_session_plays_figure2() {
    let (mut sim, srv, cli) = basic_world();
    sim.with_api(|w, api| {
        let c = w.client_mut(cli);
        c.connect(api, srv, Some(DocumentId::new(1)));
    });
    // Fig. 2 runs 19 s; allow 30 s of simulated time.
    sim.run_until(MediaTime::from_secs(30));

    let client = sim.app().client(cli);
    assert!(client.errors.is_empty(), "errors: {:?}", client.errors);
    // Subscription happened (fresh user) and the session reached Browsing
    // again after the presentation completed.
    assert!(client.user.is_some());
    assert_eq!(client.machine.state(), AppState::Browsing);
    assert_eq!(client.completed.len(), 1);
    let (doc, startup, skew) = client.completed[0];
    assert_eq!(doc, DocumentId::new(1));
    // The intentional prefill delay exists but is modest on a clean LAN.
    assert!(startup > MediaDuration::ZERO);
    assert!(startup < MediaDuration::from_secs(8), "startup {startup}");
    // The synchronized A1/V pair stayed within lip-sync bounds.
    assert!(skew <= MediaDuration::from_millis(100), "skew {skew}");

    // The presentation engine saw all five stored components play.
    let p = client.presentation.as_ref().unwrap();
    let stats = p.engine.total_stats();
    assert!(stats.frames_played > 300, "{stats:?}"); // A1: 400 blocks, V: 200 frames, ...
    assert_eq!(stats.glitches, 0, "{stats:?}");

    // Server side: the session is still connected and the streams are done.
    let server = sim.app().server(srv);
    let (_, sess) = server.sessions.iter().next().unwrap();
    assert!(sess
        .streams
        .values()
        .all(|t| t.done || t.plan.kind.is_discrete_kind()));
    // Accounting: connect + retrieval charges landed.
    let user = client.user.unwrap();
    assert!(server.accounts.balance(user).unwrap() > 0);
}

trait KindExt {
    fn is_discrete_kind(&self) -> bool;
}
impl KindExt for hermes_core::MediaKind {
    fn is_discrete_kind(&self) -> bool {
        self.is_discrete()
    }
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let (mut sim, srv, cli) = basic_world();
        sim.with_api(|w, api| {
            let c = w.client_mut(cli);
            c.connect(api, srv, Some(DocumentId::new(1)));
        });
        sim.run_until(MediaTime::from_secs(30));
        let c = sim.app().client(cli);
        (c.completed.clone(), c.log.clone(), sim.stats().delivered)
    };
    assert_eq!(run(), run());
}

#[test]
fn pause_and_resume_mid_presentation() {
    let (mut sim, srv, cli) = basic_world();
    sim.with_api(|w, api| {
        w.client_mut(cli)
            .connect(api, srv, Some(DocumentId::new(1)));
    });
    // Let it play ~8 s, pause for 5 s, resume.
    sim.run_until(MediaTime::from_secs(8));
    sim.with_api(|w, api| w.client_mut(cli).pause(api));
    sim.run_until(MediaTime::from_secs(13));
    {
        let c = sim.app().client(cli);
        assert_eq!(c.machine.state(), AppState::Paused);
    }
    sim.with_api(|w, api| w.client_mut(cli).resume(api));
    sim.run_until(MediaTime::from_secs(40));
    let c = sim.app().client(cli);
    assert!(c.errors.is_empty(), "{:?}", c.errors);
    assert_eq!(c.completed.len(), 1, "presentation completed after resume");
    assert_eq!(c.machine.state(), AppState::Browsing);
}

#[test]
fn search_fans_out_across_servers() {
    let mut b = WorldBuilder::new(3);
    let s1 = b.add_server(
        ServerId::new(0),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
    );
    let s2 = b.add_server(
        ServerId::new(1),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
    );
    let cli = b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default());
    let mut sim = b.build(3);
    let mut rng = SimRng::seed_from_u64(4);
    install_course(
        sim.app_mut().server_mut(s1),
        "Volcanology",
        &["magma"],
        10,
        2,
        LessonShape::default(),
        &mut rng,
    );
    install_course(
        sim.app_mut().server_mut(s2),
        "Oceanography",
        &["magma", "tides"],
        20,
        1,
        LessonShape::default(),
        &mut rng,
    );
    sim.with_api(|w, api| {
        w.client_mut(cli).connect(api, s1, None);
    });
    sim.run_until(MediaTime::from_secs(2));
    let q = sim.with_api(|w, api| w.client_mut(cli).search(api, "magma"));
    sim.run_until(MediaTime::from_secs(5));
    let c = sim.app().client(cli);
    let hits = c.search_results.get(&q).expect("search response arrived");
    // Lessons on both servers mention "magma"; hits carry server locations.
    let servers: std::collections::BTreeSet<ServerId> = hits.iter().map(|h| h.server).collect();
    assert_eq!(servers.len(), 2, "{hits:?}");
    assert!(hits.len() >= 3);
}

#[test]
fn remote_link_migration_with_suspend() {
    let mut b = WorldBuilder::new(5);
    let s1 = b.add_server(
        ServerId::new(0),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
    );
    let s2 = b.add_server(
        ServerId::new(1),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
    );
    let cli = b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default());
    let mut sim = b.build(5);
    let mut rng = SimRng::seed_from_u64(6);
    install_figure2(sim.app_mut().server_mut(s1), DocumentId::new(1), &mut rng);
    install_course(
        sim.app_mut().server_mut(s2),
        "Remote",
        &["faraway"],
        50,
        1,
        LessonShape::default(),
        &mut rng,
    );
    sim.with_api(|w, api| {
        w.client_mut(cli).connect(api, s1, Some(DocumentId::new(1)));
    });
    sim.run_until(MediaTime::from_secs(5));
    // Mid-presentation, follow a remote (explorational) link to server 2.
    sim.with_api(|w, api| {
        w.client_mut(cli).follow_link(
            api,
            hermes_core::LinkTarget::Remote(ServerId::new(1), DocumentId::new(50)),
        );
    });
    sim.run_until(MediaTime::from_secs(60));
    let c = sim.app().client(cli);
    assert!(c.errors.is_empty(), "{:?}", c.errors);
    // The remote lesson completed on the new server.
    assert!(
        c.completed
            .iter()
            .any(|(d, _, _)| *d == DocumentId::new(50)),
        "completed: {:?}",
        c.completed
    );
    // The old session was suspended and then expired (grace default 30 s).
    assert!(c.suspended.is_none(), "suspension expired notice received");
    let old = sim.app().server(s1);
    assert_eq!(old.sessions.len(), 0, "old session torn down after grace");
}

#[test]
fn tutor_mail_round_trip() {
    let (mut sim, srv, cli) = basic_world();
    sim.with_api(|w, api| {
        w.client_mut(cli).connect(api, srv, None);
    });
    sim.run_until(MediaTime::from_secs(2));
    sim.with_api(|w, api| {
        let mail = hermes_service::MailMessage {
            from: "user@hermes".into(),
            to: "tutor@hermes".into(),
            subject: "question about lesson 1".into(),
            body: "I did not understand the routing part.".into(),
            attachments: vec![],
        };
        w.client_mut(cli).send_mail(api, mail);
    });
    sim.run_until(MediaTime::from_secs(3));
    // The tutor (server-side) reads the mailbox and replies.
    sim.with_api(|w, api| {
        let server = w.server_mut(srv);
        let inbox = server
            .mailboxes
            .get("tutor@hermes")
            .cloned()
            .unwrap_or_default();
        assert_eq!(inbox.len(), 1);
        let reply = hermes_service::tutor_reply("user@hermes", "tutor@hermes", DocumentId::new(10));
        server
            .mailboxes
            .entry("user@hermes".into())
            .or_default()
            .push(reply);
        let _ = api;
    });
    sim.with_api(|w, api| {
        w.client_mut(cli).fetch_mail(api, "user@hermes");
    });
    sim.run_until(MediaTime::from_secs(4));
    let c = sim.app().client(cli);
    assert_eq!(c.mailbox.len(), 1);
    assert!(c.mailbox[0].body.contains("doc10"));
}

#[test]
fn nonexistent_document_reports_error() {
    let (mut sim, srv, cli) = basic_world();
    sim.with_api(|w, api| {
        w.client_mut(cli)
            .connect(api, srv, Some(DocumentId::new(999)));
    });
    sim.run_until(MediaTime::from_secs(3));
    let c = sim.app().client(cli);
    assert!(!c.errors.is_empty());
    assert!(c.errors[0].contains("not found"), "{:?}", c.errors);
    assert_eq!(c.machine.state(), AppState::Browsing); // fell back
}

#[test]
fn timed_link_interrupts_presentation() {
    // Author a document whose AT link fires at 5 s while its clip runs to
    // 12 s: the presentation must be interrupted mid-play (§3).
    let mut b = WorldBuilder::new(21);
    let srv = b.add_server(
        ServerId::new(0),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
    );
    let mut cfg = ClientConfig::default();
    cfg.auto_follow_links = true;
    let cli = b.add_client(LinkSpec::lan(10_000_000), cfg);
    let mut sim = b.build(21);
    let mut rng = SimRng::seed_from_u64(22);
    // Target lesson (doc 2).
    install_course(
        sim.app_mut().server_mut(srv),
        "Target",
        &["next"],
        2,
        1,
        LessonShape {
            images: 0,
            image_secs: 0,
            narrated_clip_secs: Some(3),
            closing_audio_secs: None,
        },
        &mut rng,
    );
    // Source document with an early AT link.
    {
        let server = sim.app_mut().server_mut(srv);
        server.db.store_mut(hermes_core::MediaKind::Audio).add(
            "long.pcm",
            hermes_core::Encoding::Pcm,
            MediaDuration::from_secs(12),
            5,
        );
        server
            .db
            .add_document(
                DocumentId::new(1),
                "<TITLE> Interrupted </TITLE>\n\
                 <AU> SOURCE=long.pcm STARTIME=0s DURATION=12s ID=1 </AU>\n\
                 <HLINK> AT=5s TO=doc2 KIND=SEQ </HLINK>",
                "source",
            )
            .unwrap();
    }
    sim.with_api(|w, api| {
        w.client_mut(cli)
            .connect(api, srv, Some(DocumentId::new(1)));
    });
    sim.run_until(MediaTime::from_secs(25));
    let c = sim.app().client(cli);
    assert!(c.errors.is_empty(), "{:?}", c.errors);
    // Doc 1 never completed (interrupted); doc 2 did.
    assert!(
        !c.completed.iter().any(|(d, _, _)| *d == DocumentId::new(1)),
        "{:?}",
        c.completed
    );
    assert!(c.completed.iter().any(|(d, _, _)| *d == DocumentId::new(2)));
    assert!(c.log.iter().any(|(_, l)| l.contains("timed link fired")));
    // The interruption happened around t=5s + startup, far before the 12 s
    // clip end.
    let fired_at = c
        .log
        .iter()
        .find(|(_, l)| l.contains("timed link fired"))
        .unwrap()
        .0;
    assert!(fired_at < MediaTime::from_secs(7), "fired at {fired_at}");
}

#[test]
fn reload_restarts_document() {
    let (mut sim, srv, cli) = basic_world();
    sim.with_api(|w, api| {
        w.client_mut(cli)
            .connect(api, srv, Some(DocumentId::new(1)));
    });
    sim.run_until(MediaTime::from_secs(6));
    sim.with_api(|w, api| w.client_mut(cli).reload(api));
    sim.run_until(MediaTime::from_secs(32));
    let c = sim.app().client(cli);
    assert!(c.errors.is_empty(), "{:?}", c.errors);
    // The reloaded presentation ran to completion from the start.
    assert_eq!(c.completed.len(), 1);
    assert_eq!(c.completed[0].0, DocumentId::new(1));
    assert!(c.log.iter().any(|(_, l)| l.contains("reload")));
    // Two full scenario deliveries happened.
    let scenario_count = c
        .log
        .iter()
        .filter(|(_, l)| l.contains("scenario for doc-1"))
        .count();
    assert_eq!(scenario_count, 2);
}

#[test]
fn history_back_and_forward() {
    let (mut sim, srv, cli) = basic_world();
    // View lesson 10, then lesson 11 (both from the installed course).
    sim.with_api(|w, api| {
        w.client_mut(cli)
            .connect(api, srv, Some(DocumentId::new(10)));
    });
    sim.run_until(MediaTime::from_secs(25));
    sim.with_api(|w, api| w.client_mut(cli).request_document(api, DocumentId::new(11)));
    sim.run_until(MediaTime::from_secs(50));
    {
        let c = sim.app().client(cli);
        assert_eq!(c.history, vec![DocumentId::new(10), DocumentId::new(11)]);
        assert_eq!(c.completed.len(), 2);
    }
    // Back to lesson 10.
    let went_back = sim.with_api(|w, api| w.client_mut(cli).back(api));
    assert!(went_back);
    sim.run_until(MediaTime::from_secs(75));
    {
        let c = sim.app().client(cli);
        // Lesson 10 presented again; history unchanged.
        assert_eq!(c.completed.len(), 3);
        assert_eq!(c.completed[2].0, DocumentId::new(10));
        assert_eq!(c.history, vec![DocumentId::new(10), DocumentId::new(11)]);
        // At the oldest entry, back is refused.
    }
    let at_oldest = sim.with_api(|w, api| !w.client_mut(cli).back(api));
    assert!(at_oldest);
    // Forward to lesson 11 again.
    let went_forward = sim.with_api(|w, api| w.client_mut(cli).forward(api));
    assert!(went_forward);
    sim.run_until(MediaTime::from_secs(100));
    let c = sim.app().client(cli);
    assert_eq!(c.completed.len(), 4);
    assert_eq!(c.completed[3].0, DocumentId::new(11));
    // At the newest entry, forward is refused (checked via a fresh api call).
    assert!(c.errors.is_empty(), "{:?}", c.errors);
}

#[test]
fn rtcp_sender_reports_reach_receivers() {
    let (mut sim, srv, cli) = basic_world();
    sim.with_api(|w, api| {
        w.client_mut(cli)
            .connect(api, srv, Some(DocumentId::new(1)));
    });
    sim.run_until(MediaTime::from_secs(30));
    {
        let srv_actor = sim.app().server(srv);
        let (_, sess) = srv_actor.sessions.iter().next().unwrap();
        assert!(
            sess.streams.values().any(|t| t.frames_sent >= 64),
            "at least one stream sent enough frames for an SR"
        );
    }
    // The client's receivers saw the sender reports: a fresh receiver
    // report carries a nonzero LSR (last-SR timestamp).
    let now = sim.now();
    let got_lsr = sim.with_api(|w, _| {
        let c = w.client_mut(cli);
        let p = c.presentation.as_mut().unwrap();
        p.receivers
            .values_mut()
            .any(|rx| match rx.receiver_report(1, now) {
                hermes_rtp::RtcpPacket::ReceiverReport { reports, .. } => {
                    reports.iter().any(|b| b.lsr != 0)
                }
                _ => false,
            })
    });
    assert!(got_lsr, "no receiver recorded a sender report");
}

#[test]
fn n_way_sync_group_streams_together() {
    // The SYNC= extension: two audio streams and a video synchronized as
    // one 3-way group (generalizing AU_VI per the paper's future work).
    let mut b = WorldBuilder::new(41);
    let srv = b.add_server(
        ServerId::new(0),
        LinkSpec::lan(10_000_000),
        ServerConfig::default(),
    );
    let cli = b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default());
    let mut sim = b.build(41);
    {
        let server = sim.app_mut().server_mut(srv);
        let mut rng = SimRng::seed_from_u64(42);
        for (key, enc) in [
            ("m.pcm", hermes_core::Encoding::Pcm),
            ("n.pcm", hermes_core::Encoding::Pcm),
        ] {
            server.db.store_mut(hermes_core::MediaKind::Audio).add(
                key,
                enc,
                MediaDuration::from_secs(6),
                rng.range_u64(0, 1 << 40),
            );
        }
        server.db.store_mut(hermes_core::MediaKind::Video).add(
            "v.mpg",
            hermes_core::Encoding::Mpeg,
            MediaDuration::from_secs(6),
            rng.range_u64(0, 1 << 40),
        );
        server
            .db
            .add_document(
                DocumentId::new(1),
                "<TITLE> Trio </TITLE>
                 <AU> SOURCE=m.pcm STARTIME=0s DURATION=6s ID=1 SYNC=scene </AU>
                 <AU> SOURCE=n.pcm STARTIME=0s DURATION=6s ID=2 SYNC=scene </AU>
                 <VI> SOURCE=v.mpg STARTIME=0s DURATION=6s ID=3 SYNC=scene </VI>",
                "trio",
            )
            .unwrap();
    }
    sim.with_api(|w, api| {
        w.client_mut(cli)
            .connect(api, srv, Some(DocumentId::new(1)));
    });
    sim.run_until(MediaTime::from_secs(15));
    let c = sim.app().client(cli);
    assert!(c.errors.is_empty(), "{:?}", c.errors);
    assert_eq!(c.completed.len(), 1);
    let p = c.presentation.as_ref().unwrap();
    // The scenario carries one 3-member sync group; skew stayed bounded.
    assert_eq!(p.scenario.sync_groups.len(), 1);
    assert_eq!(p.scenario.sync_groups[0].members.len(), 3);
    let (_, _, skew) = c.completed[0];
    assert!(skew <= MediaDuration::from_millis(80), "skew {skew}");
}

#[test]
fn stopped_stream_restarts_after_recovery() {
    use hermes_simnet::{CongestionEpoch, CongestionProfile};
    // A deep congestion epoch walks the video stream down to its floor and
    // stops it; after the epoch the grading engine upgrades and the stream
    // resumes playing on the client.
    let mut b = WorldBuilder::new(83);
    let srv = b.add_server(
        ServerId::new(0),
        LinkSpec::lan(50_000_000),
        ServerConfig::default(),
    );
    let mut access = LinkSpec::lan(3_000_000);
    access.queue_capacity_bytes = 48 << 10;
    access.congestion = CongestionProfile::new(vec![CongestionEpoch {
        start: MediaTime::from_secs(5),
        end: MediaTime::from_secs(12),
        load: 0.85,
        extra_loss: 0.05,
    }]);
    let cli = b.add_client(access, ClientConfig::default());
    let mut sim = b.build(83);
    let mut rng = SimRng::seed_from_u64(84);
    let lessons = install_course(
        sim.app_mut().server_mut(srv),
        "Longform",
        &["recovery"],
        1,
        1,
        LessonShape {
            images: 0,
            image_secs: 0,
            narrated_clip_secs: Some(40),
            closing_audio_secs: None,
        },
        &mut rng,
    );
    sim.with_api(|w, api| {
        w.client_mut(cli).connect(api, srv, Some(lessons[0]));
    });
    sim.run_until(MediaTime::from_secs(60));

    let srv_actor = sim.app().server(srv);
    let (_, sess) = srv_actor.sessions.iter().next().unwrap();
    assert!(
        sess.qos.stops_issued >= 1,
        "epoch must stop the video stream"
    );
    assert!(
        sess.qos.upgrades_issued >= 1,
        "recovery must upgrade afterwards"
    );
    // The video stream resumed transmitting after its stop.
    let video_tx = sess
        .streams
        .values()
        .find(|t| t.plan.kind == hermes_core::MediaKind::Video)
        .unwrap();
    assert!(!video_tx.stopped, "video resumed server-side");
    // Client side: the restart event appears in the playout log and video
    // frames were presented after the epoch ended.
    let c = sim.app().client(cli);
    let p = c.presentation.as_ref().unwrap();
    let video_id = video_tx.plan.component;
    let restarts = p
        .engine
        .events
        .iter()
        .filter(|e| e.component == video_id && e.kind == hermes_client::PlayoutEventKind::Started)
        .count();
    assert!(
        restarts >= 2,
        "initial start + at least one restart, got {restarts}"
    );
    let played_after_epoch = p.engine.events.iter().any(|e| {
        e.component == video_id
            && e.at > MediaTime::from_secs(20)
            && matches!(e.kind, hermes_client::PlayoutEventKind::FramePlayed { .. })
    });
    assert!(played_after_epoch, "video frames presented after recovery");
}

#[test]
fn annotations_per_user_round_trip() {
    let (mut sim, srv, cli) = basic_world();
    sim.with_api(|w, api| {
        w.client_mut(cli)
            .connect(api, srv, Some(DocumentId::new(1)));
    });
    sim.run_until(MediaTime::from_secs(2));
    sim.with_api(|w, api| {
        let c = w.client_mut(cli);
        c.annotate(api, DocumentId::new(1), "check the A/V sync at 6s");
        c.annotate(api, DocumentId::new(1), "nice figure");
        c.annotate(api, DocumentId::new(10), "revisit this lesson");
    });
    sim.run_until(MediaTime::from_secs(3));
    sim.with_api(|w, api| {
        w.client_mut(cli).fetch_annotations(api, DocumentId::new(1));
    });
    sim.run_until(MediaTime::from_secs(4));
    let c = sim.app().client(cli);
    let notes = c.annotations.get(&DocumentId::new(1)).unwrap();
    assert_eq!(
        notes,
        &vec![
            "check the A/V sync at 6s".to_string(),
            "nice figure".to_string()
        ]
    );
    // Annotations are per (user, document): doc 10 has its own.
    let user = c.user.unwrap();
    let srv_actor = sim.app().server(srv);
    assert_eq!(
        srv_actor.annotations[&(user, DocumentId::new(10))],
        vec!["revisit this lesson".to_string()]
    );
    assert!(!srv_actor
        .annotations
        .contains_key(&(hermes_core::UserId::new(999), DocumentId::new(1))));
}

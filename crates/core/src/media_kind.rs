//! Media kinds and encodings recognized by the service.
//!
//! The paper's protocol stack (Fig. 5) supports GIF/TIFF/BMP/JPEG images,
//! PCM/ADPCM/VADPCM audio and AVI/MPEG video; text and the presentation
//! scenario itself travel as discrete documents.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The five media types of the markup language (`TEXT, IMG, AU, VI` and the
/// synchronized `AU_VI` pair which is represented as separate AU + VI
/// components bound into one sync group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MediaKind {
    /// Formatted text (discrete; shown for the whole presentation unless timed).
    Text,
    /// Still image (discrete; has a start time and display duration).
    Image,
    /// Audio stream (continuous, time sensitive).
    Audio,
    /// Video stream (continuous, time sensitive).
    Video,
}

impl MediaKind {
    /// Continuous media need isochronous delivery (RTP/UDP path);
    /// discrete media go over the reliable (TCP) path — paper Fig. 5.
    pub fn is_continuous(self) -> bool {
        matches!(self, MediaKind::Audio | MediaKind::Video)
    }
    /// Discrete media: text, images, and the scenario document itself.
    pub fn is_discrete(self) -> bool {
        !self.is_continuous()
    }
    /// All media kinds, in a stable order.
    pub const ALL: [MediaKind; 4] = [
        MediaKind::Text,
        MediaKind::Image,
        MediaKind::Audio,
        MediaKind::Video,
    ];
}

impl fmt::Display for MediaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MediaKind::Text => "text",
            MediaKind::Image => "image",
            MediaKind::Audio => "audio",
            MediaKind::Video => "video",
        };
        f.write_str(s)
    }
}

/// Concrete encodings per media kind (paper Fig. 5 / §6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Encoding {
    /// Plain or lightly formatted text.
    PlainText,
    /// GIF image.
    Gif,
    /// TIFF image.
    Tiff,
    /// BMP image.
    Bmp,
    /// JPEG image.
    Jpeg,
    /// Uncompressed PCM audio.
    Pcm,
    /// ADPCM-compressed audio.
    Adpcm,
    /// Variable-rate ADPCM audio.
    Vadpcm,
    /// AVI (motion-JPEG style) video.
    Avi,
    /// MPEG-1 video.
    Mpeg,
}

impl Encoding {
    /// The media kind this encoding belongs to.
    pub fn kind(self) -> MediaKind {
        match self {
            Encoding::PlainText => MediaKind::Text,
            Encoding::Gif | Encoding::Tiff | Encoding::Bmp | Encoding::Jpeg => MediaKind::Image,
            Encoding::Pcm | Encoding::Adpcm | Encoding::Vadpcm => MediaKind::Audio,
            Encoding::Avi | Encoding::Mpeg => MediaKind::Video,
        }
    }
    /// Canonical lowercase name (used in sources and traces).
    pub fn name(self) -> &'static str {
        match self {
            Encoding::PlainText => "text",
            Encoding::Gif => "gif",
            Encoding::Tiff => "tiff",
            Encoding::Bmp => "bmp",
            Encoding::Jpeg => "jpeg",
            Encoding::Pcm => "pcm",
            Encoding::Adpcm => "adpcm",
            Encoding::Vadpcm => "vadpcm",
            Encoding::Avi => "avi",
            Encoding::Mpeg => "mpeg",
        }
    }
    /// Parse a canonical name back into an encoding.
    pub fn from_name(s: &str) -> Option<Encoding> {
        Some(match s.to_ascii_lowercase().as_str() {
            "text" => Encoding::PlainText,
            "gif" => Encoding::Gif,
            "tiff" => Encoding::Tiff,
            "bmp" => Encoding::Bmp,
            "jpeg" | "jpg" => Encoding::Jpeg,
            "pcm" => Encoding::Pcm,
            "adpcm" => Encoding::Adpcm,
            "vadpcm" => Encoding::Vadpcm,
            "avi" => Encoding::Avi,
            "mpeg" | "mpg" => Encoding::Mpeg,
            _ => return None,
        })
    }
    /// Every supported encoding, in a stable order.
    pub const ALL: [Encoding; 10] = [
        Encoding::PlainText,
        Encoding::Gif,
        Encoding::Tiff,
        Encoding::Bmp,
        Encoding::Jpeg,
        Encoding::Pcm,
        Encoding::Adpcm,
        Encoding::Vadpcm,
        Encoding::Avi,
        Encoding::Mpeg,
    ];
}

impl fmt::Display for Encoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuity_split_matches_protocol_stack() {
        assert!(MediaKind::Audio.is_continuous());
        assert!(MediaKind::Video.is_continuous());
        assert!(MediaKind::Text.is_discrete());
        assert!(MediaKind::Image.is_discrete());
    }

    #[test]
    fn encodings_map_to_kinds() {
        assert_eq!(Encoding::Jpeg.kind(), MediaKind::Image);
        assert_eq!(Encoding::Vadpcm.kind(), MediaKind::Audio);
        assert_eq!(Encoding::Mpeg.kind(), MediaKind::Video);
        assert_eq!(Encoding::PlainText.kind(), MediaKind::Text);
    }

    #[test]
    fn names_round_trip() {
        for e in Encoding::ALL {
            assert_eq!(Encoding::from_name(e.name()), Some(e), "{e:?}");
        }
        assert_eq!(Encoding::from_name("jpg"), Some(Encoding::Jpeg));
        assert_eq!(Encoding::from_name("mpg"), Some(Encoding::Mpeg));
        assert_eq!(Encoding::from_name("unknown"), None);
    }

    #[test]
    fn all_kinds_covered_by_some_encoding() {
        for k in MediaKind::ALL {
            assert!(
                Encoding::ALL.iter().any(|e| e.kind() == k),
                "no encoding for {k}"
            );
        }
    }
}

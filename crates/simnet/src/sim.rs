//! The discrete-event simulation engine.
//!
//! The engine is generic over the application's message type `M` and an
//! [`App`] implementation that reacts to message deliveries and timers. All
//! the service actors (multimedia servers, media servers, browsers) are
//! driven through these two callbacks, so an entire client–server session is
//! one deterministic, seedable event sequence.
//!
//! Two transports are provided, matching the paper's protocol stack
//! (Fig. 5):
//!
//! * **datagram** (`UDP`-like) — packets individually subject to the link
//!   loss/jitter models; used by RTP media flows;
//! * **reliable** (`TCP`-like) — lost packets are retransmitted after an
//!   RTO with exponential backoff, and delivery to the application is
//!   in-order per (source, destination) pair; used for scenarios, discrete
//!   media and control traffic.
//!
//! Packets are forwarded store-and-forward hop by hop along the static
//! shortest path, so queueing interacts correctly between flows sharing a
//! link.

use crate::faults::{FaultEvent, FaultKind, FaultPlan};
use crate::rng::SimRng;
use crate::topology::{LinkOutcome, Network};
use hermes_core::{MediaDuration, MediaTime, NodeId};
use hermes_obs::{Labels, Obs, Severity, SpanId};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet};

/// Anything sent through the network must report its wire size.
pub trait WireSize {
    /// Serialized size in bytes (headers included).
    fn wire_size(&self) -> usize;
}

/// The application driven by the simulator.
pub trait App<M>: Sized {
    /// A message arrived at `node` from `from`.
    fn on_message(&mut self, api: &mut SimApi<'_, M>, node: NodeId, from: NodeId, msg: M);
    /// A timer set with [`SimApi::set_timer`] fired at `node`.
    fn on_timer(&mut self, api: &mut SimApi<'_, M>, node: NodeId, key: u64, payload: u64);
    /// An injected fault was just applied to the engine (see [`FaultKind`]).
    /// Crash faults should clear the application's volatile state for the
    /// node; restart faults may rebuild it. Default: ignore faults.
    fn on_fault(&mut self, api: &mut SimApi<'_, M>, event: FaultEvent) {
        let _ = (api, event);
    }
}

/// Which transport a message used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Lossy datagram service.
    Datagram,
    /// Retransmitting, in-order stream service.
    Reliable,
}

enum Pending<M> {
    /// A packet sitting at `path[hop]`, about to cross to `path[hop + 1]`.
    Hop {
        path: Vec<NodeId>,
        hop: usize,
        from: NodeId,
        msg: M,
        transport: Transport,
        attempt: u32,
        sent_at: MediaTime,
        /// Reliable-stream sequence number (None for datagrams).
        seq_no: Option<u64>,
        /// Incarnation of the sending node's stack when the send started:
        /// retransmission chains die with the incarnation that created them.
        src_inc: u64,
    },
    /// Final delivery to the application.
    Deliver {
        node: NodeId,
        from: NodeId,
        msg: M,
        /// Incarnation of the destination at scheduling time: a delivery
        /// addressed to a crashed (or since-restarted) process is discarded.
        inc: u64,
    },
    /// A timer.
    Timer {
        node: NodeId,
        key: u64,
        payload: u64,
        /// Incarnation of the node when the timer was set.
        inc: u64,
    },
    /// A multicast copy sitting at `here`, bound for the subtree of group
    /// members in `targets`. At each hop the copy fans out with ONE link
    /// transmission per distinct egress link, so a shared flow costs a
    /// single copy on every trunk it crosses regardless of receiver count.
    McastHop {
        group: u64,
        here: NodeId,
        targets: Vec<NodeId>,
        from: NodeId,
        msg: M,
        /// Incarnation of the sending node when the send started.
        src_inc: u64,
    },
    /// An injected fault to apply.
    Fault(FaultKind),
}

struct Scheduled<M> {
    at: MediaTime,
    seq: u64,
    pending: Pending<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Engine-level delivery counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages handed to the application.
    pub delivered: u64,
    /// Datagrams dropped in flight (loss or queue overflow).
    pub datagrams_dropped: u64,
    /// Reliable retransmission attempts performed.
    pub retransmissions: u64,
    /// Reliable messages abandoned after exhausting retries.
    pub reliable_failures: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Injected faults applied.
    pub faults_applied: u64,
    /// Deliveries, timers and retransmissions discarded because the node
    /// involved was crashed (or had restarted into a new incarnation).
    pub fault_drops: u64,
    /// Multicast sends initiated with [`SimApi::send_mcast`].
    pub mcast_sends: u64,
    /// Copies of multicast messages placed on links (one per distinct
    /// egress link per hop — the wire cost of the shared flows).
    pub mcast_link_copies: u64,
    /// Multicast copies that reached a group member's node.
    pub mcast_deliveries: u64,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Base retransmission timeout for the reliable transport.
    pub rto: MediaDuration,
    /// Maximum reliable transmission attempts (1 = no retries).
    pub max_attempts: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            rto: MediaDuration::from_millis(200),
            max_attempts: 8,
        }
    }
}

struct Core<M> {
    now: MediaTime,
    seq: u64,
    heap: BinaryHeap<Reverse<Scheduled<M>>>,
    net: Network,
    rng: SimRng,
    cfg: SimConfig,
    stats: SimStats,
    /// Next sequence number to assign per reliable (src, dst) pair.
    reliable_tx: HashMap<(NodeId, NodeId), u64>,
    /// Next sequence number to release per reliable (src, dst) pair.
    reliable_rx: HashMap<(NodeId, NodeId), u64>,
    /// Out-of-order arrivals held back until their predecessors land.
    reliable_hold: HashMap<(NodeId, NodeId), std::collections::BTreeMap<u64, M>>,
    /// Monotone delivery clock per reliable pair: per-packet jitter must not
    /// reorder deliveries that the sequence gate already released.
    reliable_release: HashMap<(NodeId, NodeId), MediaTime>,
    /// Sequence numbers the sender abandoned (retry budget exhausted or the
    /// sender crashed): the release gate skips them instead of wedging.
    reliable_dead: HashMap<(NodeId, NodeId), BTreeSet<u64>>,
    /// Crashed nodes.
    dead: HashSet<NodeId>,
    /// Process incarnation per node (bumped on restart). Absent = 0.
    incarnation: HashMap<NodeId, u64>,
    /// Multicast group membership, managed by the sim: group id → members.
    mcast_groups: BTreeMap<u64, BTreeSet<NodeId>>,
    /// The observability capture for the run (tracing, spans, metrics,
    /// flight recorder) — events record through [`SimApi`] so every record
    /// is stamped with the engine clock.
    obs: Obs,
}

impl<M: WireSize + Clone> Core<M> {
    /// Current incarnation of a node's process.
    fn inc(&self, node: NodeId) -> u64 {
        self.incarnation.get(&node).copied().unwrap_or(0)
    }

    /// Schedule a reliable delivery no earlier than every previously
    /// released delivery of the same (src, dst) pair.
    fn schedule_reliable_delivery(
        &mut self,
        from: NodeId,
        dst: NodeId,
        arrival: MediaTime,
        msg: M,
    ) {
        let slot = self
            .reliable_release
            .entry((from, dst))
            .or_insert(MediaTime::ZERO);
        let at = arrival.max(*slot + MediaDuration::from_micros(1));
        *slot = at;
        let inc = self.inc(dst);
        self.schedule(
            at,
            Pending::Deliver {
                node: dst,
                from,
                msg,
                inc,
            },
        );
    }

    /// Release everything now deliverable on a reliable pair: flush held
    /// successors of the expected sequence number and skip sequence numbers
    /// the sender abandoned, repeatedly, until the gate blocks again.
    fn advance_reliable_gate(&mut self, from: NodeId, dst: NodeId, arrival: MediaTime) {
        loop {
            let expected = self.reliable_rx.get(&(from, dst)).copied().unwrap_or(0);
            if let Some(deadset) = self.reliable_dead.get_mut(&(from, dst)) {
                if deadset.remove(&expected) {
                    self.reliable_rx.insert((from, dst), expected + 1);
                    continue;
                }
            }
            if let Some(held) = self.reliable_hold.get_mut(&(from, dst)) {
                if let Some(m) = held.remove(&expected) {
                    self.reliable_rx.insert((from, dst), expected + 1);
                    self.schedule_reliable_delivery(from, dst, arrival, m);
                    continue;
                }
            }
            break;
        }
    }

    /// Tear down engine-level reliable-channel state involving a crashed
    /// node: outstanding sequence numbers are abandoned on both sides so
    /// surviving peers' gates cannot wedge on segments that died with the
    /// process (connection-reset semantics).
    fn teardown_reliable_channels(&mut self, node: NodeId) {
        let pairs: BTreeSet<(NodeId, NodeId)> = self
            .reliable_tx
            .keys()
            .chain(self.reliable_rx.keys())
            .chain(self.reliable_hold.keys())
            .copied()
            .filter(|(a, b)| *a == node || *b == node)
            .collect();
        for pair in pairs {
            let tx = self.reliable_tx.get(&pair).copied().unwrap_or(0);
            let rx = self.reliable_rx.entry(pair).or_insert(0);
            *rx = (*rx).max(tx);
            // Segments already delivered to the transport but parked behind
            // the in-order gate die with the connection: account them as
            // fault drops so conservation audits (sent = delivered + dropped
            // + fault_drops) keep balancing across crashes.
            if let Some(held) = self.reliable_hold.remove(&pair) {
                self.stats.fault_drops += held.len() as u64;
            }
            self.reliable_dead.remove(&pair);
        }
    }

    /// Apply one injected fault to the engine state.
    fn apply_fault(&mut self, kind: FaultKind) {
        self.stats.faults_applied += 1;
        let now = self.now;
        match kind {
            FaultKind::NodeCrash { node } => {
                self.dead.insert(node);
                self.teardown_reliable_channels(node);
                self.obs
                    .emit(now, node.raw(), Severity::Error, "node_crash", Labels::NONE);
            }
            FaultKind::NodeRestart { node } => {
                self.dead.remove(&node);
                *self.incarnation.entry(node).or_insert(0) += 1;
                self.obs.emit(
                    now,
                    node.raw(),
                    Severity::Warn,
                    "node_restart",
                    Labels::NONE,
                );
            }
            FaultKind::LinkDown { a, b } => {
                self.net.set_link_up(a, b, false);
                self.obs.emit(
                    now,
                    a.raw(),
                    Severity::Warn,
                    "link_down",
                    Labels::for_peer(b.raw()),
                );
            }
            FaultKind::LinkUp { a, b } => {
                self.net.set_link_up(a, b, true);
                self.obs.emit(
                    now,
                    a.raw(),
                    Severity::Info,
                    "link_up",
                    Labels::for_peer(b.raw()),
                );
            }
            FaultKind::NodeSlow { node, .. } => {
                // Brownouts change no engine state: the node keeps receiving
                // and its timers keep firing. The application layer sees the
                // fault via `App::on_fault` and inflates its service times.
                self.obs
                    .emit(now, node.raw(), Severity::Warn, "node_slow", Labels::NONE);
            }
            FaultKind::NodeNominal { node } => {
                self.obs.emit(
                    now,
                    node.raw(),
                    Severity::Info,
                    "node_nominal",
                    Labels::NONE,
                );
            }
        }
    }

    fn schedule(&mut self, at: MediaTime, pending: Pending<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, pending }));
    }

    fn start_send(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: M,
        transport: Transport,
        attempt: u32,
    ) -> bool {
        if self.dead.contains(&from) {
            // A crashed process cannot transmit.
            return false;
        }
        if from == to {
            // Local delivery: still asynchronous (next event), zero delay.
            let now = self.now;
            let inc = self.inc(to);
            self.schedule(
                now,
                Pending::Deliver {
                    node: to,
                    from,
                    msg,
                    inc,
                },
            );
            return true;
        }
        let Some(path) = self.net.path(from, to) else {
            return false;
        };
        let seq_no = match transport {
            Transport::Datagram => None,
            Transport::Reliable => {
                let c = self.reliable_tx.entry((from, to)).or_insert(0);
                let s = *c;
                *c += 1;
                Some(s)
            }
        };
        let now = self.now;
        let src_inc = self.inc(from);
        self.schedule(
            now,
            Pending::Hop {
                path,
                hop: 0,
                from,
                msg,
                transport,
                attempt,
                sent_at: now,
                seq_no,
                src_inc,
            },
        );
        true
    }

    /// Start a multicast send: one logical message toward every current
    /// member of `group` except the sender. Returns the number of member
    /// nodes targeted (0 when the sender is dead or the group is empty).
    fn start_send_mcast(&mut self, from: NodeId, group: u64, msg: M) -> usize {
        if self.dead.contains(&from) {
            return 0;
        }
        let Some(members) = self.mcast_groups.get(&group) else {
            return 0;
        };
        let targets: Vec<NodeId> = members.iter().copied().filter(|&t| t != from).collect();
        if targets.is_empty() {
            return 0;
        }
        self.stats.mcast_sends += 1;
        let now = self.now;
        let src_inc = self.inc(from);
        let count = targets.len();
        self.schedule(
            now,
            Pending::McastHop {
                group,
                here: from,
                targets,
                from,
                msg,
                src_inc,
            },
        );
        count
    }

    /// Forward one multicast copy from `here` toward its target subtree:
    /// deliver locally to members at this node, then group the remaining
    /// targets by routing next hop and place ONE copy on each distinct
    /// egress link. A copy lost on a link (loss model, queue overflow or a
    /// fault-injected partition) takes its whole subtree with it — datagram
    /// semantics, like the unicast RTP path. Membership is re-read at every
    /// hop, so a member leaving mid-flight stops receiving immediately.
    fn process_mcast_hop(
        &mut self,
        group: u64,
        here: NodeId,
        targets: Vec<NodeId>,
        from: NodeId,
        msg: M,
        src_inc: u64,
    ) {
        if self.dead.contains(&from) || src_inc != self.inc(from) {
            self.stats.fault_drops += 1;
            return;
        }
        let members = self.mcast_groups.get(&group).cloned().unwrap_or_default();
        let now = self.now;
        let mut by_next: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for t in targets {
            if !members.contains(&t) {
                continue; // left the group while the copy was in flight
            }
            if t == here {
                let inc = self.inc(t);
                self.stats.mcast_deliveries += 1;
                self.schedule(
                    now,
                    Pending::Deliver {
                        node: t,
                        from,
                        msg: msg.clone(),
                        inc,
                    },
                );
            } else if let Some(nh) = self.net.next_hop(here, t) {
                by_next.entry(nh).or_default().push(t);
            } else {
                self.stats.datagrams_dropped += 1; // unroutable member
            }
        }
        let size = msg.wire_size();
        for (nh, subtree) in by_next {
            let outcome = match self.net.link_mut(here, nh) {
                Some(link) => link.transmit(now, size),
                None => LinkOutcome::QueueFull,
            };
            self.stats.mcast_link_copies += 1;
            match outcome {
                LinkOutcome::Delivered { arrival } => {
                    self.schedule(
                        arrival,
                        Pending::McastHop {
                            group,
                            here: nh,
                            targets: subtree,
                            from,
                            msg: msg.clone(),
                            src_inc,
                        },
                    );
                }
                LinkOutcome::Lost { .. } | LinkOutcome::QueueFull => {
                    self.stats.datagrams_dropped += subtree.len() as u64;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn process_hop(
        &mut self,
        path: Vec<NodeId>,
        hop: usize,
        from: NodeId,
        msg: M,
        transport: Transport,
        attempt: u32,
        sent_at: MediaTime,
        seq_no: Option<u64>,
        src_inc: u64,
    ) {
        if self.dead.contains(&from) || src_inc != self.inc(from) {
            // The sending process died (or restarted) while this packet or
            // its retransmission chain was in flight: the chain dies too.
            self.stats.fault_drops += 1;
            return;
        }
        let here = path[hop];
        let next = path[hop + 1];
        let size = msg.wire_size();
        let now = self.now;
        let outcome = match self.net.link_mut(here, next) {
            Some(link) => link.transmit(now, size),
            None => LinkOutcome::QueueFull, // topology changed mid-flight
        };
        match outcome {
            LinkOutcome::Delivered { arrival } => {
                if hop + 2 == path.len() {
                    // Reached the destination node.
                    let dst = *path.last().unwrap();
                    match (transport, seq_no) {
                        (Transport::Datagram, _) | (Transport::Reliable, None) => {
                            let inc = self.inc(dst);
                            self.schedule(
                                arrival,
                                Pending::Deliver {
                                    node: dst,
                                    from,
                                    msg,
                                    inc,
                                },
                            );
                        }
                        (Transport::Reliable, Some(seq)) => {
                            // In-order release: deliver if this is the next
                            // expected sequence number, then flush any held
                            // or abandoned successors; otherwise hold.
                            let next = self.reliable_rx.entry((from, dst)).or_insert(0);
                            if seq == *next {
                                *next += 1;
                                self.schedule_reliable_delivery(from, dst, arrival, msg);
                                self.advance_reliable_gate(from, dst, arrival);
                            } else if seq > *next {
                                self.reliable_hold
                                    .entry((from, dst))
                                    .or_default()
                                    .insert(seq, msg);
                            }
                            // seq < next: stale duplicate; drop silently.
                        }
                    }
                } else {
                    self.schedule(
                        arrival,
                        Pending::Hop {
                            path,
                            hop: hop + 1,
                            from,
                            msg,
                            transport,
                            attempt,
                            sent_at,
                            seq_no,
                            src_inc,
                        },
                    );
                }
            }
            LinkOutcome::Lost { .. } | LinkOutcome::QueueFull => match transport {
                Transport::Datagram => {
                    self.stats.datagrams_dropped += 1;
                }
                Transport::Reliable => {
                    if attempt + 1 >= self.cfg.max_attempts {
                        self.stats.reliable_failures += 1;
                        {
                            let now = self.now;
                            let dst = *path.last().unwrap();
                            self.obs.emit_val(
                                now,
                                from.raw(),
                                Severity::Warn,
                                "reliable_abandon",
                                Labels::for_peer(dst.raw()),
                                attempt as i64 + 1,
                            );
                        }
                        // Abandoning a sequence number must not wedge the
                        // receiver's in-order gate: mark it dead so later
                        // segments can still be released.
                        if let Some(seq) = seq_no {
                            let dst = *path.last().unwrap();
                            self.reliable_dead
                                .entry((from, dst))
                                .or_default()
                                .insert(seq);
                            let now = self.now;
                            self.advance_reliable_gate(from, dst, now);
                        }
                    } else {
                        self.stats.retransmissions += 1;
                        // Exponential backoff from the original send time.
                        let backoff = self.cfg.rto * (1 << attempt.min(6)) as i64;
                        let retry_at = self.now + backoff;
                        let dst = *path.last().unwrap();
                        self.schedule(
                            retry_at,
                            Pending::Hop {
                                path: self.net.path(from, dst).unwrap_or(path),
                                hop: 0,
                                from,
                                msg,
                                transport,
                                attempt: attempt + 1,
                                sent_at,
                                seq_no,
                                src_inc,
                            },
                        );
                    }
                }
            },
        }
    }
}

/// The simulator: owns the application, the network and the event queue.
pub struct Sim<M, A> {
    app: A,
    core: Core<M>,
}

/// The capability handle passed to application callbacks.
pub struct SimApi<'a, M> {
    core: &'a mut Core<M>,
}

impl<'a, M: WireSize + Clone> SimApi<'a, M> {
    /// Current simulation time.
    pub fn now(&self) -> MediaTime {
        self.core.now
    }
    /// Send a datagram. Returns false if no route exists.
    pub fn send(&mut self, from: NodeId, to: NodeId, msg: M) -> bool {
        self.core.start_send(from, to, msg, Transport::Datagram, 0)
    }
    /// Send reliably (retransmitted, delivered in order per src/dst pair).
    pub fn send_reliable(&mut self, from: NodeId, to: NodeId, msg: M) -> bool {
        self.core.start_send(from, to, msg, Transport::Reliable, 0)
    }
    /// Send a datagram to every member of a multicast group (except the
    /// sender). The copy fans out along the routing tree with one link
    /// transmission per distinct egress link, so N co-located receivers
    /// cost one copy on the shared trunk. Returns the member count
    /// targeted; 0 when the group is empty or the sender is down.
    pub fn send_mcast(&mut self, from: NodeId, group: u64, msg: M) -> usize {
        self.core.start_send_mcast(from, group, msg)
    }
    /// Add `node` to multicast group `group` (idempotent).
    pub fn mcast_join(&mut self, group: u64, node: NodeId) {
        self.core
            .mcast_groups
            .entry(group)
            .or_default()
            .insert(node);
    }
    /// Remove `node` from `group`; an emptied group is dissolved.
    pub fn mcast_leave(&mut self, group: u64, node: NodeId) {
        if let Some(members) = self.core.mcast_groups.get_mut(&group) {
            members.remove(&node);
            if members.is_empty() {
                self.core.mcast_groups.remove(&group);
            }
        }
    }
    /// Current members of `group` (empty when the group does not exist).
    pub fn mcast_members(&self, group: u64) -> Vec<NodeId> {
        self.core
            .mcast_groups
            .get(&group)
            .map(|m| m.iter().copied().collect())
            .unwrap_or_default()
    }
    /// Arrange for `on_timer(node, key, payload)` after `delay`. Timers die
    /// with the incarnation that set them: if the node crashes (or crashes
    /// and restarts) before the timer fires, it is silently discarded.
    pub fn set_timer(&mut self, node: NodeId, delay: MediaDuration, key: u64, payload: u64) {
        let at = self.core.now + delay.max(MediaDuration::ZERO);
        let inc = self.core.inc(node);
        self.core.schedule(
            at,
            Pending::Timer {
                node,
                key,
                payload,
                inc,
            },
        );
    }
    /// True unless the node is currently crashed by an injected fault.
    pub fn node_is_up(&self, node: NodeId) -> bool {
        !self.core.dead.contains(&node)
    }
    /// The shared RNG (application-level randomness draws from the same
    /// seeded stream, keeping whole runs reproducible).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.core.rng
    }
    /// Read-only network access (utilization queries, link stats).
    pub fn net(&self) -> &Network {
        &self.core.net
    }
    /// Mutable network access (reservations, condition changes).
    pub fn net_mut(&mut self) -> &mut Network {
        &mut self.core.net
    }
    /// Engine counters so far.
    pub fn stats(&self) -> SimStats {
        self.core.stats
    }
    /// The run's observability capture (read side: registry, spans, …).
    pub fn obs(&self) -> &Obs {
        &self.core.obs
    }
    /// Mutable observability capture (metric publishing mid-run).
    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.core.obs
    }
    /// Record a trace event stamped with the engine clock.
    #[inline]
    pub fn emit(&mut self, node: NodeId, severity: Severity, name: &'static str, labels: Labels) {
        let now = self.core.now;
        self.core.obs.emit(now, node.raw(), severity, name, labels);
    }
    /// Record a trace event with a payload value, stamped with the clock.
    #[inline]
    pub fn emit_val(
        &mut self,
        node: NodeId,
        severity: Severity,
        name: &'static str,
        labels: Labels,
        value: i64,
    ) {
        let now = self.core.now;
        self.core
            .obs
            .emit_val(now, node.raw(), severity, name, labels, value);
    }
    /// Open a lifecycle span at the current engine clock. `parent` may be
    /// [`SpanId::NONE`] for a root; returns the null handle when tracing
    /// is off.
    #[inline]
    pub fn span_start(
        &mut self,
        node: NodeId,
        name: &'static str,
        labels: Labels,
        parent: SpanId,
    ) -> SpanId {
        let now = self.core.now;
        self.core
            .obs
            .span_start(now, node.raw(), name, labels, parent)
    }
    /// Close a span at the current engine clock (null handles ignored).
    #[inline]
    pub fn span_end(&mut self, id: SpanId) {
        let now = self.core.now;
        self.core.obs.span_end(id, now);
    }
    /// Get-or-create the root span of a session (raw id) — the shared
    /// parent for client- and server-side lifecycle spans.
    #[inline]
    pub fn session_span(&mut self, session: u64, node: NodeId) -> SpanId {
        let now = self.core.now;
        self.core.obs.session_span(session, node.raw(), now)
    }
    /// Dump `node`'s flight-recorder ring on an anomaly.
    #[inline]
    pub fn flight_dump(&mut self, node: NodeId, reason: &'static str, labels: Labels) {
        let now = self.core.now;
        self.core.obs.dump_flight(now, node.raw(), reason, labels);
    }
}

impl<M: WireSize + Clone, A: App<M>> Sim<M, A> {
    /// Build a simulator from a network, an app and a seed.
    pub fn new(net: Network, app: A, seed: u64) -> Self {
        Sim::with_config(net, app, seed, SimConfig::default())
    }

    /// Build with explicit engine configuration.
    pub fn with_config(net: Network, app: A, seed: u64, cfg: SimConfig) -> Self {
        Sim {
            app,
            core: Core {
                now: MediaTime::ZERO,
                seq: 0,
                heap: BinaryHeap::new(),
                net,
                rng: SimRng::seed_from_u64(seed),
                cfg,
                stats: SimStats::default(),
                reliable_tx: HashMap::new(),
                reliable_rx: HashMap::new(),
                reliable_hold: HashMap::new(),
                reliable_release: HashMap::new(),
                reliable_dead: HashMap::new(),
                dead: HashSet::new(),
                incarnation: HashMap::new(),
                mcast_groups: BTreeMap::new(),
                obs: Obs::new(),
            },
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> MediaTime {
        self.core.now
    }
    /// The application (for inspection between runs).
    pub fn app(&self) -> &A {
        &self.app
    }
    /// Mutable application access.
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }
    /// Engine counters.
    pub fn stats(&self) -> SimStats {
        self.core.stats
    }
    /// Network access.
    pub fn net(&self) -> &Network {
        &self.core.net
    }
    /// Mutable network access.
    pub fn net_mut(&mut self) -> &mut Network {
        &mut self.core.net
    }
    /// True unless the node is currently crashed by an injected fault.
    pub fn node_is_up(&self, node: NodeId) -> bool {
        !self.core.dead.contains(&node)
    }
    /// The run's observability capture.
    pub fn obs(&self) -> &Obs {
        &self.core.obs
    }
    /// Mutable observability capture (toggling, metric publishing).
    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.core.obs
    }
    /// Move the capture out (for export after a run), leaving a fresh one.
    pub fn take_obs(&mut self) -> Obs {
        std::mem::take(&mut self.core.obs)
    }
    /// Snapshot the engine counters and per-network totals into the
    /// capture's metrics registry under the `sim.*` / `net.*` namespaces.
    pub fn publish_metrics(&mut self) {
        let s = self.core.stats;
        let r = &mut self.core.obs.registry;
        r.counter_set("sim.delivered", Labels::NONE, s.delivered);
        r.counter_set("sim.datagrams_dropped", Labels::NONE, s.datagrams_dropped);
        r.counter_set("sim.retransmissions", Labels::NONE, s.retransmissions);
        r.counter_set("sim.reliable_failures", Labels::NONE, s.reliable_failures);
        r.counter_set("sim.timers_fired", Labels::NONE, s.timers_fired);
        r.counter_set("sim.faults_applied", Labels::NONE, s.faults_applied);
        r.counter_set("sim.fault_drops", Labels::NONE, s.fault_drops);
        r.counter_set("sim.mcast_sends", Labels::NONE, s.mcast_sends);
        r.counter_set("sim.mcast_link_copies", Labels::NONE, s.mcast_link_copies);
        r.counter_set("sim.mcast_deliveries", Labels::NONE, s.mcast_deliveries);
        let n = self.core.net.total_stats();
        r.counter_set("net.packets_sent", Labels::NONE, n.packets_sent);
        r.counter_set("net.packets_lost", Labels::NONE, n.packets_lost);
        r.counter_set(
            "net.packets_dropped_queue",
            Labels::NONE,
            n.packets_dropped_queue,
        );
        r.counter_set("net.bytes_sent", Labels::NONE, n.bytes_sent);
    }

    /// Run app code "from outside" (initial kicks, mid-run interventions).
    pub fn with_api<R>(&mut self, f: impl FnOnce(&mut A, &mut SimApi<'_, M>) -> R) -> R {
        let mut api = SimApi {
            core: &mut self.core,
        };
        f(&mut self.app, &mut api)
    }

    /// Process a single event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.core.heap.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.core.now, "time went backwards");
        self.core.now = ev.at;
        match ev.pending {
            Pending::Hop {
                path,
                hop,
                from,
                msg,
                transport,
                attempt,
                sent_at,
                seq_no,
                src_inc,
            } => {
                self.core.process_hop(
                    path, hop, from, msg, transport, attempt, sent_at, seq_no, src_inc,
                );
            }
            Pending::Deliver {
                node,
                from,
                msg,
                inc,
            } => {
                if self.core.dead.contains(&node) || inc != self.core.inc(node) {
                    self.core.stats.fault_drops += 1;
                    return true;
                }
                self.core.stats.delivered += 1;
                let mut api = SimApi {
                    core: &mut self.core,
                };
                self.app.on_message(&mut api, node, from, msg);
            }
            Pending::Timer {
                node,
                key,
                payload,
                inc,
            } => {
                if self.core.dead.contains(&node) || inc != self.core.inc(node) {
                    self.core.stats.fault_drops += 1;
                    return true;
                }
                self.core.stats.timers_fired += 1;
                let mut api = SimApi {
                    core: &mut self.core,
                };
                self.app.on_timer(&mut api, node, key, payload);
            }
            Pending::McastHop {
                group,
                here,
                targets,
                from,
                msg,
                src_inc,
            } => {
                self.core
                    .process_mcast_hop(group, here, targets, from, msg, src_inc);
            }
            Pending::Fault(kind) => {
                self.core.apply_fault(kind);
                let at = self.core.now;
                let mut api = SimApi {
                    core: &mut self.core,
                };
                self.app.on_fault(&mut api, FaultEvent { at, kind });
            }
        }
        true
    }

    /// Run until the event queue is empty or `limit` events were processed.
    /// Returns the number of events processed.
    pub fn run(&mut self, limit: u64) -> u64 {
        let mut n = 0;
        while n < limit && self.step() {
            n += 1;
        }
        n
    }

    /// Run until simulation time reaches `until` (events at exactly `until`
    /// are processed). Returns the number of events processed.
    pub fn run_until(&mut self, until: MediaTime) -> u64 {
        let mut n = 0;
        loop {
            match self.core.heap.peek() {
                Some(Reverse(ev)) if ev.at <= until => {
                    self.step();
                    n += 1;
                }
                _ => break,
            }
        }
        self.core.now = self.core.now.max(until);
        n
    }

    /// Schedule a single fault. Instants in the past are clamped to `now`.
    pub fn inject_fault(&mut self, at: MediaTime, kind: FaultKind) {
        let at = at.max(self.core.now);
        self.core.schedule(at, Pending::Fault(kind));
    }

    /// Install every event of a [`FaultPlan`] on the timer wheel. Events
    /// scheduled for the same instant apply in plan order.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        for ev in plan.events() {
            self.inject_fault(ev.at, ev.kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::LossModel;
    use crate::topology::LinkSpec;

    #[derive(Clone, Debug, PartialEq)]
    struct Msg(String, usize);
    impl WireSize for Msg {
        fn wire_size(&self) -> usize {
            self.1
        }
    }

    #[derive(Default)]
    struct Recorder {
        got: Vec<(MediaTime, NodeId, NodeId, String)>,
        timers: Vec<(MediaTime, u64, u64)>,
        echo: bool,
    }

    impl App<Msg> for Recorder {
        fn on_message(&mut self, api: &mut SimApi<'_, Msg>, node: NodeId, from: NodeId, msg: Msg) {
            self.got.push((api.now(), node, from, msg.0.clone()));
            if self.echo && msg.0 == "ping" {
                api.send_reliable(node, from, Msg("pong".into(), msg.1));
            }
        }
        fn on_timer(&mut self, api: &mut SimApi<'_, Msg>, _node: NodeId, key: u64, payload: u64) {
            self.timers.push((api.now(), key, payload));
        }
    }

    fn n(id: u64) -> NodeId {
        NodeId::new(id)
    }

    fn two_node_net(loss: LossModel) -> Network {
        two_node_net_seeded(loss, 9)
    }

    fn two_node_net_seeded(loss: LossModel, seed: u64) -> Network {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut net = Network::new();
        net.add_node(n(0), "client");
        net.add_node(n(1), "server");
        let mut spec = LinkSpec::lan(8_000_000);
        spec.loss = loss;
        net.add_duplex(n(0), n(1), spec, &mut rng);
        net.compute_routes();
        net
    }

    #[test]
    fn datagram_delivery_and_timing() {
        let mut sim = Sim::new(two_node_net(LossModel::None), Recorder::default(), 1);
        sim.with_api(|_, api| {
            assert!(api.send(n(0), n(1), Msg("hello".into(), 1000)));
        });
        sim.run(100);
        let got = &sim.app().got;
        assert_eq!(got.len(), 1);
        // 1000 bytes at 8 Mbps = 1 ms tx + 200 µs propagation.
        assert_eq!(got[0].0, MediaTime::from_micros(1200));
        assert_eq!(got[0].1, n(1));
        assert_eq!(got[0].2, n(0));
    }

    #[test]
    fn request_response_round_trip() {
        let mut sim = Sim::new(
            two_node_net(LossModel::None),
            Recorder {
                echo: true,
                ..Default::default()
            },
            1,
        );
        sim.with_api(|_, api| {
            api.send_reliable(n(0), n(1), Msg("ping".into(), 500));
        });
        sim.run(100);
        let got = &sim.app().got;
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].3, "pong");
        assert_eq!(got[1].1, n(0)); // pong arrives back at the client
        assert!(got[1].0 > got[0].0);
    }

    #[test]
    fn reliable_survives_heavy_loss() {
        // Seed pinned to a draw where no message exhausts its retry budget:
        // with p = 0.5 and 8 attempts, each message independently fails with
        // probability 2^-8, so some seeds legitimately exceed the budget.
        let mut sim = Sim::new(
            two_node_net_seeded(LossModel::Bernoulli { p: 0.5 }, 2),
            Recorder::default(),
            2,
        );
        sim.with_api(|_, api| {
            for i in 0..50 {
                api.send_reliable(n(0), n(1), Msg(format!("m{i}"), 400));
            }
        });
        sim.run(100_000);
        assert_eq!(sim.app().got.len(), 50, "all reliable messages delivered");
        assert!(sim.stats().retransmissions > 0);
        assert_eq!(sim.stats().reliable_failures, 0);
    }

    #[test]
    fn datagrams_lost_under_loss() {
        let mut sim = Sim::new(
            two_node_net(LossModel::Bernoulli { p: 0.5 }),
            Recorder::default(),
            3,
        );
        sim.with_api(|_, api| {
            for i in 0..200 {
                api.send(n(0), n(1), Msg(format!("d{i}"), 100));
            }
        });
        sim.run(10_000);
        let delivered = sim.app().got.len();
        assert!(delivered > 60 && delivered < 140, "delivered {delivered}");
        assert_eq!(sim.stats().datagrams_dropped as usize + delivered, 200);
    }

    #[test]
    fn reliable_is_in_order_per_pair() {
        let mut sim = Sim::new(
            two_node_net(LossModel::Bernoulli { p: 0.3 }),
            Recorder::default(),
            4,
        );
        sim.with_api(|_, api| {
            for i in 0..30 {
                api.send_reliable(n(0), n(1), Msg(format!("{i:03}"), 300));
            }
        });
        sim.run(100_000);
        let names: Vec<&str> = sim.app().got.iter().map(|g| g.3.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "reliable deliveries out of order");
    }

    #[test]
    fn reliable_in_order_despite_jitter() {
        // Heavy per-packet jitter must not reorder reliable deliveries —
        // the release clock keeps them monotone even when a later packet's
        // jitter sample is smaller.
        let mut rng = SimRng::seed_from_u64(77);
        let mut net = Network::new();
        net.add_node(n(0), "a");
        net.add_node(n(1), "b");
        let mut spec = LinkSpec::lan(8_000_000);
        spec.jitter = crate::models::JitterModel::Exponential {
            mean: MediaDuration::from_millis(20),
        };
        net.add_duplex(n(0), n(1), spec, &mut rng);
        net.compute_routes();
        let mut sim = Sim::new(net, Recorder::default(), 6);
        sim.with_api(|_, api| {
            for i in 0..60 {
                api.send_reliable(n(0), n(1), Msg(format!("{i:03}"), 200));
            }
        });
        sim.run(100_000);
        let names: Vec<&str> = sim.app().got.iter().map(|g| g.3.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "jitter reordered reliable deliveries");
        // Delivery times are strictly monotone per pair.
        for w in sim.app().got.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = Sim::new(two_node_net(LossModel::None), Recorder::default(), 5);
        sim.with_api(|_, api| {
            api.set_timer(n(0), MediaDuration::from_millis(30), 1, 100);
            api.set_timer(n(0), MediaDuration::from_millis(10), 2, 200);
            api.set_timer(n(0), MediaDuration::from_millis(20), 3, 300);
        });
        sim.run(10);
        let keys: Vec<u64> = sim.app().timers.iter().map(|t| t.1).collect();
        assert_eq!(keys, vec![2, 3, 1]);
        assert_eq!(sim.app().timers[0].0, MediaTime::from_millis(10));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Sim::new(two_node_net(LossModel::None), Recorder::default(), 6);
        sim.with_api(|_, api| {
            api.set_timer(n(0), MediaDuration::from_millis(10), 1, 0);
            api.set_timer(n(0), MediaDuration::from_millis(50), 2, 0);
        });
        sim.run_until(MediaTime::from_millis(20));
        assert_eq!(sim.app().timers.len(), 1);
        assert_eq!(sim.now(), MediaTime::from_millis(20));
        sim.run_until(MediaTime::from_millis(100));
        assert_eq!(sim.app().timers.len(), 2);
    }

    #[test]
    fn self_send_delivers_locally() {
        let mut sim = Sim::new(two_node_net(LossModel::None), Recorder::default(), 7);
        sim.with_api(|_, api| {
            assert!(api.send(n(0), n(0), Msg("loop".into(), 10)));
        });
        sim.run(10);
        assert_eq!(sim.app().got.len(), 1);
        assert_eq!(sim.app().got[0].0, MediaTime::ZERO);
    }

    #[test]
    fn no_route_returns_false() {
        let mut net = Network::new();
        net.add_node(n(0), "a");
        net.add_node(n(1), "b");
        // no links
        net.compute_routes();
        let mut sim = Sim::new(net, Recorder::default(), 8);
        sim.with_api(|_, api| {
            assert!(!api.send(n(0), n(1), Msg("x".into(), 10)));
        });
    }

    #[test]
    fn crash_drops_deliveries_and_timers() {
        let mut sim = Sim::new(two_node_net(LossModel::None), Recorder::default(), 11);
        sim.with_api(|_, api| {
            api.set_timer(n(1), MediaDuration::from_millis(50), 9, 0);
        });
        sim.inject_fault(
            MediaTime::from_millis(10),
            FaultKind::NodeCrash { node: n(1) },
        );
        sim.run_until(MediaTime::from_millis(20));
        assert!(!sim.node_is_up(n(1)));
        // A message sent toward the dead node is dropped at delivery.
        sim.with_api(|_, api| {
            assert!(api.send_reliable(n(0), n(1), Msg("x".into(), 100)));
        });
        sim.run(1_000);
        assert!(sim.app().got.is_empty(), "dead node received a message");
        assert!(sim.app().timers.is_empty(), "dead node's timer fired");
        assert!(sim.stats().fault_drops > 0);
    }

    #[test]
    fn crash_accounts_segments_held_by_the_inorder_gate() {
        // Under loss, later reliable segments arrive while an earlier one is
        // still being retransmitted and wait in the in-order hold. A crash
        // tears the channel down; the held segments must be counted as
        // fault drops, not silently vanish from the conservation ledger.
        let mut sim = Sim::new(
            two_node_net_seeded(LossModel::Bernoulli { p: 0.5 }, 3),
            Recorder::default(),
            3,
        );
        sim.with_api(|_, api| {
            for i in 0..10 {
                api.send_reliable(n(0), n(1), Msg(format!("m{i}"), 300));
            }
        });
        // Crash before the first retransmission timer (RTO 200 ms) so the
        // hold is still populated, then look at the ledger right away.
        sim.inject_fault(
            MediaTime::from_millis(10),
            FaultKind::NodeCrash { node: n(1) },
        );
        sim.run_until(MediaTime::from_millis(10));
        let delivered = sim.app().got.len() as u64;
        assert!(delivered < 10, "loss draw left nothing in the hold");
        assert!(
            sim.stats().fault_drops > 0,
            "held segments were discarded without accounting"
        );
    }

    #[test]
    fn node_slow_changes_no_engine_state() {
        let mut sim = Sim::new(two_node_net(LossModel::None), Recorder::default(), 21);
        sim.inject_fault(
            MediaTime::from_millis(5),
            FaultKind::NodeSlow {
                node: n(1),
                factor: 10,
            },
        );
        sim.with_api(|_, api| {
            api.send_reliable(n(0), n(1), Msg("through".into(), 100));
            api.set_timer(n(1), MediaDuration::from_millis(20), 1, 0);
        });
        sim.run(1_000);
        // The node is alive: delivery and timers proceed; only the app-level
        // service model (not the engine) slows down.
        assert!(sim.node_is_up(n(1)));
        assert_eq!(sim.app().got.len(), 1);
        assert_eq!(sim.app().timers.len(), 1);
        assert_eq!(sim.stats().faults_applied, 1);
        assert_eq!(sim.stats().fault_drops, 0);
    }

    #[test]
    fn crashed_node_cannot_send() {
        let mut sim = Sim::new(two_node_net(LossModel::None), Recorder::default(), 12);
        sim.inject_fault(MediaTime::ZERO, FaultKind::NodeCrash { node: n(0) });
        sim.run(1);
        sim.with_api(|_, api| {
            assert!(!api.send(n(0), n(1), Msg("x".into(), 100)));
        });
    }

    #[test]
    fn restart_revives_with_fresh_incarnation() {
        let mut sim = Sim::new(two_node_net(LossModel::None), Recorder::default(), 13);
        // Timer set by incarnation 0; node crashes and restarts before it
        // fires — the stale timer must die with its incarnation.
        sim.with_api(|_, api| {
            api.set_timer(n(1), MediaDuration::from_millis(100), 1, 1);
        });
        sim.install_faults(&FaultPlan::new().crash_for(
            n(1),
            MediaTime::from_millis(10),
            MediaDuration::from_millis(20),
        ));
        sim.run_until(MediaTime::from_millis(40));
        assert!(sim.node_is_up(n(1)));
        // Fresh traffic and timers work after the restart.
        sim.with_api(|_, api| {
            api.send_reliable(n(0), n(1), Msg("hello-again".into(), 200));
            api.set_timer(n(1), MediaDuration::from_millis(5), 2, 2);
        });
        sim.run_until(MediaTime::from_millis(200));
        assert!(
            sim.app().timers.iter().all(|t| t.1 == 2),
            "stale timer fired"
        );
        assert_eq!(sim.app().timers.len(), 1);
        assert_eq!(sim.app().got.len(), 1);
        assert_eq!(sim.app().got[0].3, "hello-again");
    }

    #[test]
    fn partition_heals_through_reliable_arq() {
        let mut sim = Sim::new(two_node_net(LossModel::None), Recorder::default(), 14);
        // Partition for 1 s starting just before the send: every attempt
        // during the outage is dropped, but backoff retries outlive it.
        sim.install_faults(&FaultPlan::new().partition(
            n(0),
            n(1),
            MediaTime::ZERO,
            MediaTime::from_secs(1),
        ));
        sim.run(1); // apply LinkDown
        sim.with_api(|_, api| {
            for i in 0..5 {
                api.send_reliable(n(0), n(1), Msg(format!("{i}"), 300));
            }
        });
        sim.run(100_000);
        assert_eq!(sim.app().got.len(), 5, "messages lost across the partition");
        assert!(sim.app().got.iter().all(|g| g.0 >= MediaTime::from_secs(1)));
        assert_eq!(sim.stats().reliable_failures, 0);
        assert!(sim.net().total_stats().packets_dropped_down > 0);
        // Datagrams sent during the outage are simply gone.
        assert!(sim.net().link_is_up(n(0), n(1)));
    }

    #[test]
    fn abandoned_sequence_does_not_wedge_the_gate() {
        // Partition longer than the whole retry window (~25.4 s at default
        // rto/attempts): the first message exhausts its budget, and later
        // messages sent after the heal must still be delivered.
        let mut sim = Sim::new(two_node_net(LossModel::None), Recorder::default(), 15);
        sim.install_faults(&FaultPlan::new().partition(
            n(0),
            n(1),
            MediaTime::ZERO,
            MediaTime::from_secs(60),
        ));
        sim.run(1);
        sim.with_api(|_, api| {
            api.send_reliable(n(0), n(1), Msg("doomed".into(), 300));
        });
        sim.run_until(MediaTime::from_secs(61));
        assert_eq!(sim.stats().reliable_failures, 1);
        assert!(sim.app().got.is_empty());
        sim.with_api(|_, api| {
            api.send_reliable(n(0), n(1), Msg("after-heal".into(), 300));
        });
        sim.run(100_000);
        assert_eq!(sim.app().got.len(), 1, "gate wedged on abandoned seq");
        assert_eq!(sim.app().got[0].3, "after-heal");
    }

    /// Star topology for multicast tests: server `n(1)` — backbone `n(0)` —
    /// clients `n(10)..n(10+clients)`, with `loss` on the client access
    /// links only (the shared server trunk stays clean).
    fn star_net(clients: u64, loss: LossModel, seed: u64) -> Network {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut net = Network::new();
        net.add_node(n(0), "backbone");
        net.add_node(n(1), "server");
        net.add_duplex(n(1), n(0), LinkSpec::lan(8_000_000), &mut rng);
        for i in 0..clients {
            let c = n(10 + i);
            net.add_node(c, format!("client-{i}"));
            let mut spec = LinkSpec::lan(8_000_000);
            spec.loss = loss.clone();
            net.add_duplex(n(0), c, spec, &mut rng);
        }
        net.compute_routes();
        net
    }

    #[test]
    fn mcast_single_copy_per_egress_link() {
        let mut sim = Sim::new(star_net(4, LossModel::None, 21), Recorder::default(), 21);
        sim.with_api(|_, api| {
            for i in 0..4 {
                api.mcast_join(7, n(10 + i));
            }
            for i in 0..10 {
                assert_eq!(api.send_mcast(n(1), 7, Msg(format!("m{i}"), 800)), 4);
            }
        });
        sim.run(100_000);
        // Every member received every message...
        assert_eq!(sim.app().got.len(), 40);
        for i in 0..4 {
            let cnt = sim.app().got.iter().filter(|g| g.1 == n(10 + i)).count();
            assert_eq!(cnt, 10, "client {i}");
        }
        // ...but the shared server trunk carried ONE copy per send, not
        // one per receiver: fan-out happens at the backbone.
        let trunk = sim.net().link(n(1), n(0)).unwrap().stats;
        assert_eq!(trunk.packets_sent, 10);
        assert_eq!(trunk.bytes_sent, 10 * 800);
        for i in 0..4 {
            let access = sim.net().link(n(0), n(10 + i)).unwrap().stats;
            assert_eq!(access.packets_sent, 10);
        }
        let s = sim.stats();
        assert_eq!(s.mcast_sends, 10);
        assert_eq!(s.mcast_link_copies, 10 * 5); // 1 trunk + 4 access per send
        assert_eq!(s.mcast_deliveries, 40);
    }

    #[test]
    fn mcast_per_receiver_loss_is_independent() {
        let mut sim = Sim::new(
            star_net(3, LossModel::Bernoulli { p: 0.4 }, 22),
            Recorder::default(),
            22,
        );
        sim.with_api(|_, api| {
            for i in 0..3 {
                api.mcast_join(7, n(10 + i));
            }
            for i in 0..200 {
                api.send_mcast(n(1), 7, Msg(format!("m{i}"), 100));
            }
        });
        sim.run(1_000_000);
        // Each access link draws from its own RNG stream: losses hit
        // members independently, and every copy is accounted for.
        let mut counts = Vec::new();
        for i in 0..3 {
            let cnt = sim.app().got.iter().filter(|g| g.1 == n(10 + i)).count();
            assert!((70..170).contains(&cnt), "client {i} got {cnt}");
            counts.push(cnt);
        }
        counts.dedup();
        assert!(counts.len() > 1, "identical loss across receivers");
        let s = sim.stats();
        assert_eq!(
            s.mcast_deliveries + s.datagrams_dropped,
            600,
            "every copy delivered or counted lost"
        );
    }

    #[test]
    fn mcast_membership_churn_in_flight() {
        let mut sim = Sim::new(star_net(2, LossModel::None, 23), Recorder::default(), 23);
        sim.with_api(|_, api| {
            api.mcast_join(7, n(10));
            api.mcast_join(7, n(11));
            // The copy is scheduled, then a member leaves before it moves:
            // membership is re-read at each hop, so the leaver never
            // receives a copy already in flight.
            assert_eq!(api.send_mcast(n(1), 7, Msg("while-member".into(), 400)), 2);
            api.mcast_leave(7, n(11));
        });
        sim.run(10_000);
        assert_eq!(sim.app().got.len(), 1);
        assert_eq!(sim.app().got[0].1, n(10));
        // Rejoining resumes reception of later sends.
        sim.with_api(|_, api| {
            api.mcast_join(7, n(11));
            assert_eq!(api.send_mcast(n(1), 7, Msg("rejoined".into(), 400)), 2);
        });
        sim.run(10_000);
        assert_eq!(sim.app().got.len(), 3);
        assert!(sim
            .app()
            .got
            .iter()
            .any(|g| g.1 == n(11) && g.3 == "rejoined"));
    }

    #[test]
    fn mcast_partitioned_member_stops_then_resumes() {
        let mut sim = Sim::new(star_net(2, LossModel::None, 24), Recorder::default(), 24);
        sim.install_faults(&FaultPlan::new().partition(
            n(0),
            n(11),
            MediaTime::from_millis(10),
            MediaTime::from_millis(100),
        ));
        sim.with_api(|_, api| {
            api.mcast_join(7, n(10));
            api.mcast_join(7, n(11));
            api.send_mcast(n(1), 7, Msg("before".into(), 300));
        });
        sim.run_until(MediaTime::from_millis(10));
        // During the partition only the reachable member receives; the
        // partitioned subtree's copy dies at the cut.
        sim.with_api(|_, api| {
            api.send_mcast(n(1), 7, Msg("during".into(), 300));
        });
        sim.run_until(MediaTime::from_millis(120));
        // After the link heals, mcast reception resumes without rejoining.
        sim.with_api(|_, api| {
            api.send_mcast(n(1), 7, Msg("after".into(), 300));
        });
        sim.run_until(MediaTime::from_millis(200));
        let at = |node: NodeId| -> Vec<&str> {
            sim.app()
                .got
                .iter()
                .filter(|g| g.1 == node)
                .map(|g| g.3.as_str())
                .collect()
        };
        assert_eq!(at(n(10)), vec!["before", "during", "after"]);
        assert_eq!(at(n(11)), vec!["before", "after"]);
        assert!(sim.net().total_stats().packets_dropped_down > 0);
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let trace = |seed| {
            let mut sim = Sim::new(
                two_node_net_seeded(LossModel::Bernoulli { p: 0.2 }, seed),
                Recorder::default(),
                seed,
            );
            sim.install_faults(
                &FaultPlan::new()
                    .crash_for(
                        n(1),
                        MediaTime::from_millis(30),
                        MediaDuration::from_millis(40),
                    )
                    .flap(
                        n(0),
                        n(1),
                        MediaTime::from_millis(100),
                        MediaDuration::from_millis(50),
                        MediaDuration::from_millis(10),
                        4,
                    ),
            );
            sim.with_api(|_, api| {
                for i in 0..40 {
                    api.send_reliable(n(0), n(1), Msg(format!("{i:02}"), 200));
                }
            });
            sim.run(100_000);
            (
                sim.app()
                    .got
                    .iter()
                    .map(|g| (g.0, g.3.clone()))
                    .collect::<Vec<_>>(),
                sim.stats(),
            )
        };
        assert_eq!(trace(42), trace(42));
    }

    #[test]
    fn identical_seeds_identical_traces() {
        let trace = |seed| {
            let mut sim = Sim::new(
                two_node_net_seeded(LossModel::Bernoulli { p: 0.2 }, seed),
                Recorder::default(),
                seed,
            );
            sim.with_api(|_, api| {
                for i in 0..40 {
                    api.send(n(0), n(1), Msg(format!("{i}"), 200));
                }
            });
            sim.run(10_000);
            sim.app()
                .got
                .iter()
                .map(|g| (g.0, g.3.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(trace(42), trace(42));
        assert_ne!(trace(42), trace(43));
    }
}

//! The flow scheduler (paper §4, Fig. 3).
//!
//! "At the server's site, the *flow scheduler* uses the retrieved from the
//! *multimedia database* presentation scenario to compute a *flow scenario*
//! for each participating media stream. This flow scenario specifies the
//! sending start time instances of the corresponding media streams, as well
//! as other transmission properties (e.g. transmission rates). Furthermore,
//! it activates the appropriate media servers."

use hermes_core::{
    ComponentContent, ComponentId, Encoding, MediaDuration, MediaKind, MediaSource, MediaTime,
    QosRequirement, Scenario,
};
use hermes_media::CodecModel;
use serde::{Deserialize, Serialize};

/// The transmission plan for one media stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowPlan {
    /// The component the plan transmits.
    pub component: ComponentId,
    /// Media kind (selects the media server).
    pub kind: MediaKind,
    /// Encoding of the stored object.
    pub encoding: Encoding,
    /// Where the data lives.
    pub source: MediaSource,
    /// When the media server must start sending, relative to the flow
    /// scenario start: the playout deadline minus the delivery lead.
    pub send_start: MediaTime,
    /// Frame/block sending period at nominal quality.
    pub frame_period: MediaDuration,
    /// Playout duration to transmit.
    pub duration: MediaDuration,
    /// Nominal mean transmission rate, bits/second.
    pub rate_bps: u64,
    /// The QoS requirement for the stream's connection setup.
    pub requirement: QosRequirement,
}

/// The complete flow scenario for a document request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowScenario {
    /// One plan per stored media component, in send-start order.
    pub plans: Vec<FlowPlan>,
    /// The delivery lead applied (media time window + transfer estimate).
    pub lead: MediaDuration,
}

impl FlowScenario {
    /// Aggregate nominal bandwidth of all continuous streams, bits/second
    /// (the quantity the admission controller reserves). Discrete media are
    /// charged at their transfer rate only momentarily, so the aggregate
    /// uses the *peak concurrent* continuous demand plus a 10% discrete
    /// allowance.
    pub fn aggregate_bandwidth_bps(&self) -> u64 {
        // Sweep the timeline of continuous plans for the peak concurrent sum.
        let mut edges: Vec<(MediaTime, i64)> = Vec::new();
        let mut discrete_max = 0u64;
        for p in &self.plans {
            if p.kind.is_continuous() {
                edges.push((p.send_start, p.rate_bps as i64));
                edges.push((p.send_start + p.duration, -(p.rate_bps as i64)));
            } else {
                discrete_max = discrete_max.max(p.rate_bps / 10);
            }
        }
        edges.sort();
        let mut cur = 0i64;
        let mut peak = 0i64;
        for (_, d) in edges {
            cur += d;
            peak = peak.max(cur);
        }
        peak as u64 + discrete_max
    }

    /// The plan for a component.
    pub fn plan(&self, id: ComponentId) -> Option<&FlowPlan> {
        self.plans.iter().find(|p| p.component == id)
    }
}

/// Flow-scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// The client's media time window (prefill target) the sender must lead
    /// by.
    pub media_time_window: MediaDuration,
    /// Extra lead covering transfer and processing delay estimates.
    pub transfer_margin: MediaDuration,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            media_time_window: MediaDuration::from_millis(1_000),
            transfer_margin: MediaDuration::from_millis(250),
        }
    }
}

/// Compute the flow scenario for a presentation scenario.
///
/// Sending for each stream starts one *lead* (media time window + transfer
/// margin) before its playout deadline `t_i`, clamped at zero — the
/// intentional initial delay of §4 appears on the client side as the gap
/// between requesting the document and the presentation start.
pub fn compute_flow_scenario(scenario: &Scenario, cfg: FlowConfig) -> FlowScenario {
    let lead = cfg.media_time_window + cfg.transfer_margin;
    let end = scenario.presentation_end();
    let mut plans = Vec::new();
    for c in &scenario.components {
        let ComponentContent::Stored { source, encoding } = &c.content else {
            continue; // inline text travels with the scenario itself
        };
        let model = CodecModel::for_encoding(*encoding);
        let level = model.level(hermes_core::GradeLevel::NOMINAL);
        let duration = match c.duration {
            Some(d) => d,
            None => (end - c.start).max(MediaDuration::ZERO),
        };
        let send_start = (c.start - lead).max(MediaTime::ZERO);
        let rate_bps = level.bandwidth_bps();
        let requirement = if c.kind().is_continuous() {
            QosRequirement::continuous(rate_bps, 300, 0.05)
        } else {
            QosRequirement::discrete(rate_bps)
        };
        plans.push(FlowPlan {
            component: c.id,
            kind: c.kind(),
            encoding: *encoding,
            source: source.clone(),
            send_start,
            frame_period: level.frame_period(),
            duration,
            rate_bps,
            requirement,
        });
    }
    plans.sort_by_key(|p| (p.send_start, p.component));
    FlowScenario { plans, lead }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_core::{DocumentId, ServerId};
    use hermes_hml::{scenario_from_markup, FIGURE2_MARKUP};

    fn fig2_flow() -> FlowScenario {
        let s = scenario_from_markup(FIGURE2_MARKUP, DocumentId::new(1), ServerId::new(0)).unwrap();
        compute_flow_scenario(&s, FlowConfig::default())
    }

    #[test]
    fn plans_for_stored_components_only() {
        let f = fig2_flow();
        // Fig. 2 has 5 stored components (I1, I2, A1, V, A2); the text is
        // inline and needs no flow.
        assert_eq!(f.plans.len(), 5);
        assert!(f.plans.iter().all(|p| p.kind != MediaKind::Text));
    }

    #[test]
    fn send_start_leads_playout_deadline() {
        let f = fig2_flow();
        let a1 = f.plan(ComponentId::new(3)).unwrap(); // starts at t=6s
        assert_eq!(a1.send_start, MediaTime::from_millis(6_000 - 1_250));
        // Streams whose deadline is inside the lead clamp to zero.
        let i1 = f.plan(ComponentId::new(1)).unwrap(); // t=0
        assert_eq!(i1.send_start, MediaTime::ZERO);
    }

    #[test]
    fn plans_sorted_by_send_start() {
        let f = fig2_flow();
        for w in f.plans.windows(2) {
            assert!(w[0].send_start <= w[1].send_start);
        }
    }

    #[test]
    fn rates_come_from_codec_models() {
        let f = fig2_flow();
        let v = f.plan(ComponentId::new(4)).unwrap();
        assert_eq!(v.encoding, Encoding::Mpeg);
        assert_eq!(v.rate_bps, 1_500_000);
        assert_eq!(v.frame_period, MediaDuration::from_millis(40));
        let a = f.plan(ComponentId::new(3)).unwrap();
        assert_eq!(a.rate_bps, 705_600);
        assert_eq!(a.frame_period, MediaDuration::from_millis(20));
    }

    #[test]
    fn aggregate_bandwidth_uses_peak_concurrency() {
        let f = fig2_flow();
        // A1 (705.6k) and V (1.5M) overlap; A2 does not overlap them.
        let agg = f.aggregate_bandwidth_bps();
        assert!(agg >= 705_600 + 1_500_000, "agg {agg}");
        assert!(agg < 705_600 + 1_500_000 + 705_600, "agg {agg}");
    }

    #[test]
    fn continuous_vs_discrete_requirements() {
        let f = fig2_flow();
        let v = f.plan(ComponentId::new(4)).unwrap();
        assert!(v.requirement.max_loss > 0.0); // continuous tolerates loss
        let i1 = f.plan(ComponentId::new(1)).unwrap();
        assert_eq!(i1.requirement.max_loss, 0.0); // discrete goes reliable
    }

    #[test]
    fn open_ended_components_clamped_to_presentation_end() {
        let s = scenario_from_markup(
            "<TITLE>t</TITLE>
             <IMG> SOURCE=a.jpg STARTIME=0s ID=1 </IMG>
             <AU> SOURCE=b.pcm STARTIME=0s DURATION=30s ID=2 </AU>",
            DocumentId::new(1),
            ServerId::new(0),
        )
        .unwrap();
        let f = compute_flow_scenario(&s, FlowConfig::default());
        let img = f.plan(ComponentId::new(1)).unwrap();
        assert_eq!(img.duration, MediaDuration::from_secs(30));
    }
}

//! # hermes-client
//!
//! The browser/client side of the service (paper Fig. 3, right half):
//!
//! * [`buffers`] — per-stream media buffers with the *media time window*
//!   prefill, watermarks and the drop/duplicate repairs;
//! * [`playout`] — the deadline-driven presentation engine with occupancy
//!   repairs and intermedia skew enforcement (short-term recovery);
//! * [`qos_manager`] — the Client QoS Manager producing feedback reports;
//! * [`app_state`] — the application state machine of paper Fig. 4;
//! * [`presentation`] — the headless desktop renderer;
//! * [`concurrent`] — wall-clock thread-per-stream playout (§3.1's
//!   algorithm, literally).

#![warn(missing_docs)]

pub mod app_state;
pub mod buffers;
pub mod concurrent;
pub mod playout;
pub mod presentation;
pub mod qos_manager;

pub use app_state::{all_legal_transitions, transition, AppEvent, AppState, AppStateMachine};
pub use buffers::{BufferConfig, BufferState, BufferStats, MediaBuffer};
pub use playout::{
    PlayoutConfig, PlayoutEngine, PlayoutEvent, PlayoutEventKind, StreamPlayout,
    StreamPlayoutStats, StreamStatus,
};
pub use presentation::{desktop_at, render_text_blocks, storyboard, DesktopItem};
pub use qos_manager::{ClientQosManager, FeedbackConfig, StreamCondition};

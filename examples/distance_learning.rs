//! Distance learning with Hermes (paper §6): a multi-server deployment with
//! courses, distributed search, lesson navigation across servers
//! (suspend/migrate), and asynchronous tutor mail.
//!
//! ```sh
//! cargo run --example distance_learning
//! ```

use hermes_od::core::{DocumentId, LinkTarget, MediaTime, ServerId};
use hermes_od::service::{
    install_course, tutor_reply, ClientConfig, LessonShape, MailMessage, ServerConfig, WorldBuilder,
};
use hermes_od::simnet::{LinkSpec, SimRng};

fn main() {
    // Two Hermes servers with different thematic units, one student.
    let mut b = WorldBuilder::new(11);
    let geo = b.add_server(
        ServerId::new(0),
        LinkSpec::wan(8_000_000, 10),
        ServerConfig::default(),
    );
    let bio = b.add_server(
        ServerId::new(1),
        LinkSpec::wan(8_000_000, 18),
        ServerConfig::default(),
    );
    let student = b.add_client(LinkSpec::lan(10_000_000), ClientConfig::default());
    let mut sim = b.build(11);

    let mut rng = SimRng::seed_from_u64(1);
    let shape = LessonShape {
        images: 1,
        image_secs: 3,
        narrated_clip_secs: Some(5),
        closing_audio_secs: None,
    };
    let geo_lessons = install_course(
        sim.app_mut().server_mut(geo),
        "Geography",
        &["rivers", "mountains", "erosion"],
        10,
        2,
        shape,
        &mut rng,
    );
    let bio_lessons = install_course(
        sim.app_mut().server_mut(bio),
        "Biology",
        &["cells", "erosion", "soil life"],
        30,
        1,
        shape,
        &mut rng,
    );
    println!(
        "installed {} geography lessons on srv-0, {} biology lessons on srv-1",
        geo_lessons.len(),
        bio_lessons.len()
    );

    // Connect to the geography server and view lesson 1.
    sim.with_api(|w, api| {
        w.client_mut(student)
            .connect(api, geo, Some(geo_lessons[0]));
    });
    sim.run_until(MediaTime::from_secs(15));

    // Search the whole service for "erosion" — hits on BOTH servers.
    let query = sim.with_api(|w, api| w.client_mut(student).search(api, "erosion"));
    sim.run_until(MediaTime::from_secs(17));
    {
        let c = sim.app().client(student);
        let hits = c.search_results.get(&query).expect("search results");
        println!("search 'erosion' → {} hits:", hits.len());
        for h in hits {
            println!("  {} on {}: {}", h.document, h.server, h.title);
        }
        assert!(hits.iter().any(|h| h.server == ServerId::new(1)));
    }

    // Follow an explorational link to the biology server (suspend + migrate).
    sim.with_api(|w, api| {
        w.client_mut(student)
            .follow_link(api, LinkTarget::Remote(ServerId::new(1), bio_lessons[0]));
    });
    sim.run_until(MediaTime::from_secs(40));
    {
        let c = sim.app().client(student);
        assert!(
            c.completed.iter().any(|(d, _, _)| *d == bio_lessons[0]),
            "biology lesson completed: {:?}",
            c.completed
        );
        println!("migrated to srv-1 and completed {}", bio_lessons[0]);
    }

    // Ask the tutor a question; the tutor replies pointing at lesson 2.
    sim.with_api(|w, api| {
        w.client_mut(student).send_mail(
            api,
            MailMessage {
                from: "user@hermes".into(),
                to: "tutor@hermes".into(),
                subject: "soil life".into(),
                body: "Which lesson explains soil organisms?".into(),
                attachments: vec![],
            },
        );
    });
    sim.run_until(MediaTime::from_secs(41));
    sim.with_api(|w, _| {
        let server = w.server_mut(bio);
        let inbox = server
            .mailboxes
            .get("tutor@hermes")
            .cloned()
            .unwrap_or_default();
        println!(
            "tutor inbox: {} message(s): '{}'",
            inbox.len(),
            inbox[0].subject
        );
        let reply = tutor_reply("user@hermes", "tutor@hermes", DocumentId::new(30));
        server
            .mailboxes
            .entry("user@hermes".into())
            .or_default()
            .push(reply);
    });
    sim.with_api(|w, api| w.client_mut(student).fetch_mail(api, "user@hermes"));
    sim.run_until(MediaTime::from_secs(42));

    let c = sim.app().client(student);
    println!(
        "student mailbox: {} message(s): '{}'",
        c.mailbox.len(),
        c.mailbox[0].body
    );
    println!("\nsession log:");
    for (at, line) in &c.log {
        println!("  {at}  {line}");
    }
    assert!(c.errors.is_empty(), "{:?}", c.errors);
}

//! Timer-key constants and payload packing shared by the actors.

use hermes_core::{ComponentId, SessionId};

/// Server: a media stream's transmission begins (flow-scenario send start).
pub const TK_STREAM_START: u64 = 1;
/// Server: send the next frame of a stream.
pub const TK_FRAME: u64 = 2;
/// Server: a suspended connection's grace period check.
pub const TK_GRACE: u64 = 3;
/// Server: ship a discrete media object.
pub const TK_DISCRETE: u64 = 4;
/// Server: emit the next per-session liveness heartbeat.
pub const TK_HEARTBEAT: u64 = 5;
/// Server: periodic degradation-ladder evaluation (queue-pressure check).
pub const TK_LADDER: u64 = 6;
/// Server: hedge delay expired for a media fetch (payload = fetch id) —
/// issue the duplicate to the next-best replica if still unanswered.
pub const TK_HEDGE: u64 = 7;
/// Client: periodic feedback report.
pub const TK_FEEDBACK: u64 = 10;
/// Client: playout tick.
pub const TK_TICK: u64 = 11;
/// Client: prefill/priming check before starting the presentation.
pub const TK_PRIME: u64 = 12;
/// Client: retransmit an unacknowledged tracked control request
/// (payload = request id).
pub const TK_RETRY: u64 = 13;
/// Client: liveness check — has the server been heard from recently?
pub const TK_LIVENESS: u64 = 14;
/// Media node: service of the fetch at the head of the queue completes.
pub const TK_MEDIA_SVC: u64 = 15;
/// Server: paced re-pump of a stream whose fetch was shed by an overloaded
/// media node (payload = packed session/component).
pub const TK_REPUMP: u64 = 16;

/// Pack a (session, component) pair into one timer payload.
pub fn pack(session: SessionId, component: ComponentId) -> u64 {
    debug_assert!(session.raw() < (1 << 32) && component.raw() < (1 << 32));
    (session.raw() << 32) | component.raw()
}

/// Unpack a timer payload into (session, component).
pub fn unpack(payload: u64) -> (SessionId, ComponentId) {
    (
        SessionId::new(payload >> 32),
        ComponentId::new(payload & 0xFFFF_FFFF),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let s = SessionId::new(123_456);
        let c = ComponentId::new(789);
        assert_eq!(unpack(pack(s, c)), (s, c));
        assert_eq!(
            unpack(pack(SessionId::new(0), ComponentId::new(0))),
            (SessionId::new(0), ComponentId::new(0))
        );
    }
}

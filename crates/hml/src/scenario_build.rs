//! Scenario extraction: turn a parsed document AST into the core
//! [`Scenario`] — the client-side "preprocessing of the received
//! presentation scenario" that recognizes each media stream and fills in the
//! playout structures.
//!
//! Component ids: explicit `ID=` values are honored; elements without one
//! get the next free id. `AU_VI` pairs become two components bound by a
//! [`SyncGroup`]. Encodings are taken from `ENCODING=` or inferred from the
//! object key's extension, falling back to a per-kind default.

use crate::ast::*;
use crate::values::SourceRef;
use hermes_core::{
    ComponentContent, ComponentId, DocumentId, Encoding, HyperLink, LinkTarget, MediaComponent,
    MediaKind, MediaTime, Scenario, ServerId, SyncGroup, TextBlock, TextRun,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// An error produced while lowering an AST to a scenario.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BuildError {
    /// Two elements claim the same explicit component id.
    DuplicateId(u64),
    /// An `ENCODING=` value names an unknown encoding.
    UnknownEncoding(String),
    /// An encoding is valid but does not match the element's media kind
    /// (e.g. `ENCODING=jpeg` on an `<AU>`).
    EncodingKindMismatch {
        /// The encoding named.
        encoding: String,
        /// The element's kind.
        expected: MediaKind,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateId(id) => write!(f, "duplicate component id {id}"),
            BuildError::UnknownEncoding(e) => write!(f, "unknown encoding '{e}'"),
            BuildError::EncodingKindMismatch { encoding, expected } => {
                write!(f, "encoding '{encoding}' is not a {expected} encoding")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Infer an encoding from the object key's extension.
fn infer_encoding(object: &str, kind: MediaKind) -> Encoding {
    let ext = object.rsplit('.').next().unwrap_or("");
    if let Some(e) = Encoding::from_name(ext) {
        if e.kind() == kind {
            return e;
        }
    }
    match kind {
        MediaKind::Text => Encoding::PlainText,
        MediaKind::Image => Encoding::Jpeg,
        MediaKind::Audio => Encoding::Pcm,
        MediaKind::Video => Encoding::Mpeg,
    }
}

fn resolve_encoding(
    explicit: &Option<String>,
    source: &SourceRef,
    kind: MediaKind,
) -> Result<Encoding, BuildError> {
    if let Some(name) = explicit {
        let e =
            Encoding::from_name(name).ok_or_else(|| BuildError::UnknownEncoding(name.clone()))?;
        if e.kind() != kind {
            return Err(BuildError::EncodingKindMismatch {
                encoding: name.clone(),
                expected: kind,
            });
        }
        return Ok(e);
    }
    let object = match source {
        SourceRef::Absolute(m) => m.object.as_str(),
        SourceRef::Relative(o) => o.as_str(),
    };
    Ok(infer_encoding(object, kind))
}

struct IdPicker {
    used: BTreeSet<u64>,
    next: u64,
}

impl IdPicker {
    fn new() -> Self {
        IdPicker {
            used: BTreeSet::new(),
            next: 0,
        }
    }
    fn claim(&mut self, explicit: Option<u64>) -> Result<ComponentId, BuildError> {
        match explicit {
            Some(id) => {
                if !self.used.insert(id) {
                    return Err(BuildError::DuplicateId(id));
                }
                Ok(ComponentId::new(id))
            }
            None => {
                while self.used.contains(&self.next) {
                    self.next += 1;
                }
                let id = self.next;
                self.used.insert(id);
                self.next += 1;
                Ok(ComponentId::new(id))
            }
        }
    }
}

/// Lower a document AST into a [`Scenario`].
///
/// * `document` — the id this scenario presents;
/// * `home` — the server relative `SOURCE` keys resolve against.
pub fn build_scenario(
    doc: &HmlDocument,
    document: DocumentId,
    home: ServerId,
) -> Result<Scenario, BuildError> {
    let mut scenario = Scenario::new(document, doc.title.clone());
    let mut ids = IdPicker::new();
    // Named SYNC groups (extension): label → member component ids.
    let mut named_sync: std::collections::BTreeMap<String, Vec<ComponentId>> =
        std::collections::BTreeMap::new();

    // First pass: claim all explicit ids so implicit allocation never
    // collides with a later explicit one.
    for item in doc.body_items() {
        let explicit: Vec<Option<u64>> = match item {
            BodyItem::Text(t) => vec![t.id],
            BodyItem::Image(i) => vec![i.id],
            BodyItem::Audio(a) => vec![a.id],
            BodyItem::Video(v) => vec![v.id],
            BodyItem::AudioVideo(av) => vec![av.audio.id, av.video.id],
            _ => vec![],
        };
        for id in explicit.into_flatten() {
            if !ids.used.insert(id) {
                return Err(BuildError::DuplicateId(id));
            }
        }
    }
    // `claim` must not double-insert explicit ids; reset and re-run with a
    // shared picker that already knows them.
    let pre_claimed = ids.used.clone();
    let mut ids = IdPicker::new();
    ids.used = pre_claimed;

    let claim_explicit = |ids: &mut IdPicker, explicit: Option<u64>| match explicit {
        Some(id) => Ok(ComponentId::new(id)), // already registered in pass 1
        None => ids.claim(None),
    };

    for sentence in &doc.sentences {
        // Headings become part of the always-visible text component stream:
        // we synthesize one text component per sentence holding headings +
        // text blocks that are untimed; timed <TEXT> elements become their
        // own components.
        let mut blocks: Vec<TextBlock> = sentence
            .headings
            .iter()
            .map(|h| TextBlock::Heading(h.level, h.text.clone()))
            .collect();

        for item in &sentence.body {
            match item {
                BodyItem::Paragraph => blocks.push(TextBlock::ParagraphBreak),
                BodyItem::Text(t) => {
                    let runs: Vec<TextRun> = t
                        .runs
                        .iter()
                        .map(|r| TextRun {
                            text: r.text.clone(),
                            style: r.style,
                        })
                        .collect();
                    if t.timing.start.is_none() && t.timing.duration.is_none() && t.id.is_none() {
                        // Untimed anonymous text folds into the sentence text.
                        blocks.push(TextBlock::Runs(runs));
                    } else {
                        let id = claim_explicit(&mut ids, t.id)?;
                        scenario.components.push(MediaComponent {
                            id,
                            content: ComponentContent::Text(vec![TextBlock::Runs(runs)]),
                            start: t.timing.start.unwrap_or(MediaTime::ZERO),
                            duration: t.timing.duration,
                            region: None,
                            note: None,
                        });
                    }
                }
                BodyItem::Image(img) => {
                    let id = claim_explicit(&mut ids, img.id)?;
                    let encoding = resolve_encoding(&img.encoding, &img.source, MediaKind::Image)?;
                    scenario.components.push(MediaComponent {
                        id,
                        content: ComponentContent::Stored {
                            source: img.source.resolve(home),
                            encoding,
                        },
                        start: img.timing.start.unwrap_or(MediaTime::ZERO),
                        duration: img.timing.duration,
                        region: img.region,
                        note: img.note.clone(),
                    });
                }
                BodyItem::Audio(au) => {
                    let id = claim_explicit(&mut ids, au.id)?;
                    let encoding = resolve_encoding(&au.encoding, &au.source, MediaKind::Audio)?;
                    if let Some(label) = &au.sync {
                        named_sync.entry(label.clone()).or_default().push(id);
                    }
                    scenario.components.push(MediaComponent {
                        id,
                        content: ComponentContent::Stored {
                            source: au.source.resolve(home),
                            encoding,
                        },
                        start: au.timing.start.unwrap_or(MediaTime::ZERO),
                        duration: au.timing.duration,
                        region: None,
                        note: au.note.clone(),
                    });
                }
                BodyItem::Video(vi) => {
                    let id = claim_explicit(&mut ids, vi.id)?;
                    let encoding = resolve_encoding(&vi.encoding, &vi.source, MediaKind::Video)?;
                    if let Some(label) = &vi.sync {
                        named_sync.entry(label.clone()).or_default().push(id);
                    }
                    scenario.components.push(MediaComponent {
                        id,
                        content: ComponentContent::Stored {
                            source: vi.source.resolve(home),
                            encoding,
                        },
                        start: vi.timing.start.unwrap_or(MediaTime::ZERO),
                        duration: vi.timing.duration,
                        region: vi.region,
                        note: vi.note.clone(),
                    });
                }
                BodyItem::AudioVideo(av) => {
                    let a_id = claim_explicit(&mut ids, av.audio.id)?;
                    let v_id = claim_explicit(&mut ids, av.video.id)?;
                    let a_enc =
                        resolve_encoding(&av.audio.encoding, &av.audio.source, MediaKind::Audio)?;
                    let v_enc =
                        resolve_encoding(&av.video.encoding, &av.video.source, MediaKind::Video)?;
                    let start = av.audio.timing.start.unwrap_or(MediaTime::ZERO);
                    let duration = av.audio.timing.duration;
                    scenario.components.push(MediaComponent {
                        id: a_id,
                        content: ComponentContent::Stored {
                            source: av.audio.source.resolve(home),
                            encoding: a_enc,
                        },
                        start,
                        duration,
                        region: None,
                        note: av.note.clone(),
                    });
                    scenario.components.push(MediaComponent {
                        id: v_id,
                        content: ComponentContent::Stored {
                            source: av.video.source.resolve(home),
                            encoding: v_enc,
                        },
                        start,
                        duration,
                        region: av.video.region,
                        note: av.note.clone(),
                    });
                    scenario.sync_groups.push(SyncGroup {
                        members: vec![a_id, v_id],
                    });
                }
                BodyItem::Link(l) => {
                    let target = match l.host {
                        Some(h) if h != home => LinkTarget::Remote(h, l.to),
                        _ => LinkTarget::Local(l.to),
                    };
                    scenario.links.push(HyperLink {
                        kind: l.kind,
                        target,
                        auto_at: l.at,
                        note: l.note.clone(),
                    });
                }
            }
        }

        if !blocks.is_empty() {
            let id = ids.claim(None)?;
            scenario.components.push(MediaComponent {
                id,
                content: ComponentContent::Text(blocks),
                start: MediaTime::ZERO,
                duration: None, // visible "throughout the presentation"
                region: None,
                note: None,
            });
        }
    }

    // Materialize named SYNC groups (≥2 members each; singletons are
    // authoring mistakes the scenario validator would flag as degenerate,
    // so drop them silently — a lone label synchronizes with nothing).
    for (_, members) in named_sync {
        if members.len() >= 2 {
            scenario.sync_groups.push(SyncGroup { members });
        }
    }

    Ok(scenario)
}

/// Small helper: iterate `Vec<Option<T>>` flattening the `Some`s.
trait IntoFlatten<T> {
    fn into_flatten(self) -> Vec<T>;
}
impl<T> IntoFlatten<T> for Vec<Option<T>> {
    fn into_flatten(self) -> Vec<T> {
        self.into_iter().flatten().collect()
    }
}

/// Parse markup text and lower it to a scenario in one step.
pub fn scenario_from_markup(
    src: &str,
    document: DocumentId,
    home: ServerId,
) -> Result<Scenario, crate::Error> {
    let doc = crate::parser::parse(src)?;
    build_scenario(&doc, document, home).map_err(crate::Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use hermes_core::MediaDuration;

    fn build(src: &str) -> Scenario {
        let doc = parse(src).unwrap();
        build_scenario(&doc, DocumentId::new(1), ServerId::new(0)).unwrap()
    }

    #[test]
    fn figure2_markup_produces_expected_scenario() {
        // The §3.1 example scenario written in the markup language.
        let src = r#"
<TITLE> Figure 2 </TITLE>
<TEXT> This text is shown throughout the presentation </TEXT>
<IMG> SOURCE=i1.jpg STARTIME=0s DURATION=5s ID=1 </IMG>
<IMG> SOURCE=i2.jpg STARTIME=5s DURATION=7s ID=2 </IMG>
<AU_VI> STARTIME=6s DURATION=8s SOURCE=a1.pcm SOURCE=v.mpg ID=3 ID=4 </AU_VI>
<AU> SOURCE=a2.pcm STARTIME=15s DURATION=4s ID=5 </AU>
<HLINK> AT=19s TO=doc2 KIND=SEQ </HLINK>
"#;
        let s = build(src);
        assert!(s.is_well_formed(), "{:?}", s.validate());
        // 5 stored components + 1 synthesized sentence text component.
        assert_eq!(s.components.len(), 6);
        assert_eq!(s.sync_groups.len(), 1);
        assert_eq!(
            s.sync_groups[0].members,
            vec![ComponentId::new(3), ComponentId::new(4)]
        );
        assert_eq!(s.presentation_end(), MediaTime::from_secs(19));
        let v = s.component(ComponentId::new(4)).unwrap();
        assert_eq!(v.start, MediaTime::from_secs(6));
        assert_eq!(v.duration, Some(MediaDuration::from_secs(8)));
        assert_eq!(v.kind(), MediaKind::Video);
    }

    #[test]
    fn encoding_inferred_from_extension() {
        let s = build("<TITLE>t</TITLE> <IMG> SOURCE=logo.gif ID=1 </IMG>");
        match &s.component(ComponentId::new(1)).unwrap().content {
            ComponentContent::Stored { encoding, .. } => assert_eq!(*encoding, Encoding::Gif),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn encoding_default_when_extension_unknown() {
        let s = build("<TITLE>t</TITLE> <VI> SOURCE=clip.raw ID=1 </VI>");
        match &s.component(ComponentId::new(1)).unwrap().content {
            ComponentContent::Stored { encoding, .. } => assert_eq!(*encoding, Encoding::Mpeg),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn explicit_encoding_overrides_extension() {
        let s = build("<TITLE>t</TITLE> <AU> SOURCE=sound.pcm ENCODING=adpcm ID=1 </AU>");
        match &s.component(ComponentId::new(1)).unwrap().content {
            ComponentContent::Stored { encoding, .. } => assert_eq!(*encoding, Encoding::Adpcm),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn encoding_kind_mismatch_rejected() {
        let doc = parse("<TITLE>t</TITLE> <AU> SOURCE=x ENCODING=jpeg </AU>").unwrap();
        let e = build_scenario(&doc, DocumentId::new(1), ServerId::new(0)).unwrap_err();
        assert!(matches!(e, BuildError::EncodingKindMismatch { .. }));
    }

    #[test]
    fn duplicate_explicit_ids_rejected() {
        let doc = parse("<TITLE>t</TITLE> <IMG> SOURCE=a ID=1 </IMG> <IMG> SOURCE=b ID=1 </IMG>")
            .unwrap();
        let e = build_scenario(&doc, DocumentId::new(1), ServerId::new(0)).unwrap_err();
        assert_eq!(e, BuildError::DuplicateId(1));
    }

    #[test]
    fn implicit_ids_avoid_explicit_ones() {
        // Explicit ID=0 forces the implicit allocator to skip 0.
        let s = build("<TITLE>t</TITLE> <IMG> SOURCE=a ID=0 </IMG> <IMG> SOURCE=b </IMG>");
        let ids: Vec<u64> = s.components.iter().map(|c| c.id.raw()).collect();
        let unique: BTreeSet<u64> = ids.iter().copied().collect();
        assert_eq!(ids.len(), unique.len(), "ids not unique: {ids:?}");
    }

    #[test]
    fn remote_links_resolved() {
        let s = build(
            "<TITLE>t</TITLE> <HLINK> TO=doc5 HOST=srv2 KIND=EXP </HLINK> <HLINK> TO=doc6 HOST=srv0 </HLINK>",
        );
        assert_eq!(
            s.links[0].target,
            LinkTarget::Remote(ServerId::new(2), DocumentId::new(5))
        );
        // HOST pointing at the home server collapses to a local link.
        assert_eq!(s.links[1].target, LinkTarget::Local(DocumentId::new(6)));
    }

    #[test]
    fn relative_sources_resolve_to_home_server() {
        let doc = parse("<TITLE>t</TITLE> <IMG> SOURCE=pic.jpg ID=1 </IMG>").unwrap();
        let s = build_scenario(&doc, DocumentId::new(1), ServerId::new(9)).unwrap();
        match &s.component(ComponentId::new(1)).unwrap().content {
            ComponentContent::Stored { source, .. } => {
                assert_eq!(source.server, ServerId::new(9));
                assert_eq!(source.object, "pic.jpg");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn untimed_text_folds_into_sentence_component() {
        let s = build("<TITLE>t</TITLE> <H1> head </H1> <TEXT> body </TEXT> <PAR>");
        assert_eq!(s.components.len(), 1);
        match &s.components[0].content {
            ComponentContent::Text(blocks) => {
                assert!(matches!(blocks[0], TextBlock::Heading(_, _)));
                assert!(matches!(blocks[1], TextBlock::Runs(_)));
                assert!(matches!(blocks[2], TextBlock::ParagraphBreak));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.components[0].duration, None);
    }

    #[test]
    fn timed_text_is_its_own_component() {
        let s = build("<TITLE>t</TITLE> <TEXT> STARTIME=2s DURATION=3s ID=7 caption </TEXT>");
        let c = s.component(ComponentId::new(7)).unwrap();
        assert_eq!(c.start, MediaTime::from_secs(2));
        assert_eq!(c.duration, Some(MediaDuration::from_secs(3)));
    }

    #[test]
    fn named_sync_groups_generalize_au_vi() {
        // Three streams synchronized by one SYNC label — the n-way
        // generalization of AU_VI (the paper's future-work extension).
        let s = build(
            "<TITLE>t</TITLE>
             <AU> SOURCE=a1.pcm STARTIME=2s DURATION=8s ID=1 SYNC=scene </AU>
             <AU> SOURCE=a2.pcm STARTIME=2s DURATION=8s ID=2 SYNC=scene </AU>
             <VI> SOURCE=v.mpg STARTIME=2s DURATION=8s ID=3 SYNC=scene </VI>
             <AU> SOURCE=solo.pcm STARTIME=0s DURATION=1s ID=4 SYNC=lonely </AU>",
        );
        assert!(s.is_well_formed(), "{:?}", s.validate());
        assert_eq!(s.sync_groups.len(), 1, "singleton labels dropped");
        assert_eq!(
            s.sync_groups[0].members,
            vec![
                ComponentId::new(1),
                ComponentId::new(2),
                ComponentId::new(3)
            ]
        );
        assert_eq!(s.sync_partners(ComponentId::new(1)).len(), 2);
    }

    #[test]
    fn mismatched_sync_timing_flagged() {
        let s = build(
            "<TITLE>t</TITLE>
             <AU> SOURCE=a.pcm STARTIME=0s DURATION=5s ID=1 SYNC=g </AU>
             <VI> SOURCE=v.mpg STARTIME=1s DURATION=5s ID=2 SYNC=g </VI>",
        );
        assert!(!s.is_well_formed());
    }

    #[test]
    fn one_step_helper_works() {
        let s = scenario_from_markup(
            "<TITLE>t</TITLE> <AU> SOURCE=a.pcm ID=1 DURATION=2s </AU>",
            DocumentId::new(3),
            ServerId::new(0),
        )
        .unwrap();
        assert_eq!(s.document, DocumentId::new(3));
    }
}

//! Abstract syntax tree of the markup language, mirroring the BNF grammar of
//! paper Fig. 1: a document is a `TITLE` followed by a sequence of
//! `<HSentence>`s, each of which has optional headings, a main body of media
//! elements and links, and an optional separator.

use crate::values::SourceRef;
use hermes_core::{
    DocumentId, HeadingLevel, LinkKind, MediaDuration, MediaTime, Region, ServerId, TextStyle,
};
use serde::{Deserialize, Serialize};

/// A styled run of text inside `<TEXT>`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AstTextRun {
    /// The characters.
    pub text: String,
    /// Accumulated style from enclosing `B`/`I`/`U` spans.
    pub style: TextStyle,
}

/// Common timing attributes of a media element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Timing {
    /// `STARTIME=` — relative playout start; defaults to 0.
    pub start: Option<MediaTime>,
    /// `DURATION=` — playout duration; `None` = open-ended / intrinsic.
    pub duration: Option<MediaDuration>,
}

/// `<TEXT>` element: styled runs (paragraph breaks appear as body items).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TextElem {
    /// Styled text runs.
    pub runs: Vec<AstTextRun>,
    /// Optional timing (text may be timed like any media).
    pub timing: Timing,
    /// Optional explicit component id.
    pub id: Option<u64>,
}

/// `<IMG>` element.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageElem {
    /// Where the image data lives (`SOURCE=`).
    pub source: SourceRef,
    /// Timing attributes.
    pub timing: Timing,
    /// Placement (`WHERE`/`WIDTH`/`HEIGHT`).
    pub region: Option<Region>,
    /// Component id (`ID=`).
    pub id: Option<u64>,
    /// Annotation (`NOTE=`).
    pub note: Option<String>,
    /// Encoding name (`ENCODING=`, defaults inferred from the object key).
    pub encoding: Option<String>,
}

/// `<AU>` element.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AudioElem {
    /// Source (`SOURCE=`).
    pub source: SourceRef,
    /// Timing.
    pub timing: Timing,
    /// Component id.
    pub id: Option<u64>,
    /// Annotation.
    pub note: Option<String>,
    /// Encoding name.
    pub encoding: Option<String>,
    /// Named sync group (`SYNC=`, extension).
    pub sync: Option<String>,
}

/// `<VI>` element.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VideoElem {
    /// Source (`SOURCE=`).
    pub source: SourceRef,
    /// Timing.
    pub timing: Timing,
    /// Placement.
    pub region: Option<Region>,
    /// Component id.
    pub id: Option<u64>,
    /// Annotation.
    pub note: Option<String>,
    /// Encoding name.
    pub encoding: Option<String>,
    /// Named sync group (`SYNC=`, extension).
    pub sync: Option<String>,
}

/// `<AU_VI>` element: the synchronized audio+video pair. Per the grammar,
/// it carries two `STARTIME`s, two `SOURCE`s and two `ID`s (audio first),
/// but the pair must start together — the parser enforces equal start times.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AudioVideoElem {
    /// The audio half.
    pub audio: AudioElem,
    /// The video half.
    pub video: VideoElem,
    /// Shared annotation.
    pub note: Option<String>,
}

/// `<HLINK>` element.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkElem {
    /// Sequential (default) or explorational (`KIND=`).
    pub kind: LinkKind,
    /// Target document (`TO=`).
    pub to: DocumentId,
    /// Target server for remote links (`HOST=`).
    pub host: Option<ServerId>,
    /// Timed auto-activation (`AT=`).
    pub at: Option<MediaTime>,
    /// Annotation.
    pub note: Option<String>,
}

/// One item of an `<HSentence>` body (`<Body>` in the grammar).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BodyItem {
    /// `<TEXT>`.
    Text(TextElem),
    /// `<IMG>`.
    Image(ImageElem),
    /// `<AU>`.
    Audio(AudioElem),
    /// `<VI>`.
    Video(VideoElem),
    /// `<AU_VI>`.
    AudioVideo(AudioVideoElem),
    /// `<HLINK>`.
    Link(LinkElem),
    /// `<PAR>` — paragraph break.
    Paragraph,
}

/// A heading line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Heading {
    /// H1/H2/H3.
    pub level: HeadingLevel,
    /// Heading text.
    pub text: String,
}

/// `<HSentence>`: headings, then a body, then an optional separator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HSentence {
    /// Leading headings (the grammar allows at most one per level slot; we
    /// keep them in order of appearance).
    pub headings: Vec<Heading>,
    /// Body items.
    pub body: Vec<BodyItem>,
    /// Trailing `<SEP>`.
    pub separator: bool,
}

/// `<Hdocument>`: the root.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HmlDocument {
    /// Document title.
    pub title: String,
    /// Sentences in order.
    pub sentences: Vec<HSentence>,
}

impl HmlDocument {
    /// Iterate all body items across sentences.
    pub fn body_items(&self) -> impl Iterator<Item = &BodyItem> {
        self.sentences.iter().flat_map(|s| s.body.iter())
    }
    /// Count media elements (AU_VI counts as two streams).
    pub fn media_count(&self) -> usize {
        self.body_items()
            .map(|b| match b {
                BodyItem::Text(_)
                | BodyItem::Image(_)
                | BodyItem::Audio(_)
                | BodyItem::Video(_) => 1,
                BodyItem::AudioVideo(_) => 2,
                _ => 0,
            })
            .sum()
    }
    /// Count hyperlinks.
    pub fn link_count(&self) -> usize {
        self.body_items()
            .filter(|b| matches!(b, BodyItem::Link(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::SourceRef;

    #[test]
    fn counting_helpers() {
        let doc = HmlDocument {
            title: "t".into(),
            sentences: vec![HSentence {
                headings: vec![],
                body: vec![
                    BodyItem::Paragraph,
                    BodyItem::Text(TextElem {
                        runs: vec![],
                        timing: Timing::default(),
                        id: None,
                    }),
                    BodyItem::AudioVideo(AudioVideoElem {
                        audio: AudioElem {
                            source: SourceRef::Relative("a".into()),
                            timing: Timing::default(),
                            id: None,
                            note: None,
                            encoding: None,
                            sync: None,
                        },
                        video: VideoElem {
                            source: SourceRef::Relative("v".into()),
                            timing: Timing::default(),
                            region: None,
                            id: None,
                            note: None,
                            encoding: None,
                            sync: None,
                        },
                        note: None,
                    }),
                    BodyItem::Link(LinkElem {
                        kind: LinkKind::Sequential,
                        to: DocumentId::new(2),
                        host: None,
                        at: None,
                        note: None,
                    }),
                ],
                separator: true,
            }],
        };
        assert_eq!(doc.media_count(), 3);
        assert_eq!(doc.link_count(), 1);
        assert_eq!(doc.body_items().count(), 4);
    }
}
